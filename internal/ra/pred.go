// Package ra defines the relational algebra of the tcq mini-DBMS: the
// expression AST (the prototype's query language is RA expressions), a
// predicate language for selections, schema inference, and the
// inclusion–exclusion transform that rewrites COUNT(E) for an arbitrary
// RA expression E into a signed sum of COUNTs over
// Select-Join-Intersect-Project terms (Section 2 of the paper).
package ra

import (
	"fmt"
	"strconv"
	"strings"

	"tcq/internal/tuple"
)

// CmpOp is a comparison operator in a selection predicate.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Eq
	Ne
	Ge
	Gt
)

// String returns the SQL-ish spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ne:
		return "!="
	case Ge:
		return ">="
	case Gt:
		return ">"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

func (op CmpOp) matches(c int) bool {
	switch op {
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Ge:
		return c >= 0
	case Gt:
		return c > 0
	}
	return false
}

// Operand is one side of a comparison: a column reference or a constant.
type Operand interface {
	operandString() string
}

// Col references a column by name.
type Col struct{ Name string }

func (c Col) operandString() string { return c.Name }

// Const is a literal value (int64, float64 or string).
type Const struct{ Value tuple.Value }

func (c Const) operandString() string {
	if s, ok := c.Value.(string); ok {
		// Quote with the RA lexer's escape convention — a backslash
		// makes the next byte literal — so rendering and re-parsing are
		// inverses for every string. (%q would emit multi-byte escapes
		// like \xf1 that the lexer reads as a literal 'x' plus "f1".)
		var sb strings.Builder
		sb.WriteByte('"')
		for i := 0; i < len(s); i++ {
			if s[i] == '"' || s[i] == '\\' {
				sb.WriteByte('\\')
			}
			sb.WriteByte(s[i])
		}
		sb.WriteByte('"')
		return sb.String()
	}
	if v, ok := c.Value.(float64); ok {
		// Plain decimal with a mandatory fraction: the RA lexer has no
		// exponent syntax, and a bare "-0" or "100" would re-parse as
		// an integer. FormatFloat('f', -1) is the shortest decimal
		// that round-trips the value exactly.
		s := strconv.FormatFloat(v, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	}
	return fmt.Sprintf("%v", c.Value)
}

// Pred is a selection predicate.
type Pred interface {
	// String renders the predicate.
	String() string
	// Comparisons returns the number of atomic comparisons in the
	// predicate; the cost model charges per comparison.
	Comparisons() int
}

// Cmp is an atomic comparison between two operands.
type Cmp struct {
	Left  Operand
	Op    CmpOp
	Right Operand
}

func (c *Cmp) String() string {
	return c.Left.operandString() + " " + c.Op.String() + " " + c.Right.operandString()
}

// Comparisons returns 1.
func (c *Cmp) Comparisons() int { return 1 }

// And is a conjunction of two predicates.
type And struct{ L, R Pred }

func (a *And) String() string   { return "(" + a.L.String() + " and " + a.R.String() + ")" }
func (a *And) Comparisons() int { return a.L.Comparisons() + a.R.Comparisons() }

// Or is a disjunction of two predicates.
type Or struct{ L, R Pred }

func (o *Or) String() string   { return "(" + o.L.String() + " or " + o.R.String() + ")" }
func (o *Or) Comparisons() int { return o.L.Comparisons() + o.R.Comparisons() }

// Not negates a predicate.
type Not struct{ P Pred }

func (n *Not) String() string   { return "not " + n.P.String() }
func (n *Not) Comparisons() int { return n.P.Comparisons() }

// True is the always-true predicate.
type True struct{}

func (True) String() string   { return "true" }
func (True) Comparisons() int { return 0 }

// CompiledPred is a predicate bound to a schema, ready to evaluate.
type CompiledPred func(tuple.Tuple) bool

// Compile binds p to schema, resolving column references to indices.
// It returns an error for unknown columns.
func Compile(p Pred, schema *tuple.Schema) (CompiledPred, error) {
	switch q := p.(type) {
	case True:
		return func(tuple.Tuple) bool { return true }, nil
	case *True:
		return func(tuple.Tuple) bool { return true }, nil
	case *Cmp:
		left, err := compileOperand(q.Left, schema)
		if err != nil {
			return nil, err
		}
		right, err := compileOperand(q.Right, schema)
		if err != nil {
			return nil, err
		}
		op := q.Op
		return func(t tuple.Tuple) bool {
			return op.matches(tuple.CompareValues(left(t), right(t)))
		}, nil
	case *And:
		l, err := Compile(q.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(q.R, schema)
		if err != nil {
			return nil, err
		}
		return func(t tuple.Tuple) bool { return l(t) && r(t) }, nil
	case *Or:
		l, err := Compile(q.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(q.R, schema)
		if err != nil {
			return nil, err
		}
		return func(t tuple.Tuple) bool { return l(t) || r(t) }, nil
	case *Not:
		inner, err := Compile(q.P, schema)
		if err != nil {
			return nil, err
		}
		return func(t tuple.Tuple) bool { return !inner(t) }, nil
	default:
		return nil, fmt.Errorf("ra: unknown predicate type %T", p)
	}
}

func compileOperand(o Operand, schema *tuple.Schema) (func(tuple.Tuple) tuple.Value, error) {
	switch v := o.(type) {
	case Col:
		i, ok := schema.ColIndex(v.Name)
		if !ok {
			return nil, fmt.Errorf("ra: unknown column %q (schema has %s)", v.Name, schemaCols(schema))
		}
		return func(t tuple.Tuple) tuple.Value { return t[i] }, nil
	case Const:
		val := v.Value
		switch val.(type) {
		case int64, float64, string:
			return func(tuple.Tuple) tuple.Value { return val }, nil
		case int:
			iv := int64(val.(int))
			return func(tuple.Tuple) tuple.Value { return iv }, nil
		default:
			return nil, fmt.Errorf("ra: unsupported constant type %T", val)
		}
	default:
		return nil, fmt.Errorf("ra: unknown operand type %T", o)
	}
}

func schemaCols(s *tuple.Schema) string {
	names := make([]string, s.NumCols())
	for i := range names {
		names[i] = s.Col(i).Name
	}
	return strings.Join(names, ", ")
}
