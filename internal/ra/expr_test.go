package ra

import (
	"strings"
	"testing"

	"tcq/internal/tuple"
)

// testRels builds a small catalog with two union-compatible relations
// r and s (columns id, v) and a third relation u (columns k, w).
func testRels() *MapRelations {
	m := NewMapRelations()
	rs := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "v", Type: tuple.Int},
	)
	us := tuple.MustSchema(
		tuple.Column{Name: "k", Type: tuple.Int},
		tuple.Column{Name: "w", Type: tuple.Int},
	)
	mk := func(pairs ...[2]int64) []tuple.Tuple {
		out := make([]tuple.Tuple, len(pairs))
		for i, p := range pairs {
			out[i] = tuple.Tuple{p[0], p[1]}
		}
		return out
	}
	m.Add("r", rs, mk([2]int64{1, 10}, [2]int64{2, 20}, [2]int64{3, 30}, [2]int64{4, 40}))
	m.Add("s", rs, mk([2]int64{3, 30}, [2]int64{4, 99}, [2]int64{5, 50}))
	m.Add("u", us, mk([2]int64{1, 7}, [2]int64{3, 8}, [2]int64{3, 9}))
	return m
}

func TestSchemaInference(t *testing.T) {
	m := testRels()
	cases := []struct {
		expr    Expr
		cols    int
		wantErr bool
	}{
		{&Base{"r"}, 2, false},
		{&Base{"missing"}, 0, true},
		{&Select{&Base{"r"}, &Cmp{Col{"v"}, Gt, Const{int64(0)}}}, 2, false},
		{&Select{&Base{"r"}, &Cmp{Col{"zz"}, Gt, Const{int64(0)}}}, 0, true},
		{&Project{&Base{"r"}, []string{"v"}}, 1, false},
		{&Project{&Base{"r"}, []string{}}, 0, true},
		{&Project{&Base{"r"}, []string{"zz"}}, 0, true},
		{&Join{&Base{"r"}, &Base{"u"}, []JoinCond{{"id", "k"}}}, 4, false},
		{&Join{&Base{"r"}, &Base{"u"}, nil}, 0, true},
		{&Join{&Base{"r"}, &Base{"u"}, []JoinCond{{"zz", "k"}}}, 0, true},
		{&Join{&Base{"r"}, &Base{"u"}, []JoinCond{{"id", "zz"}}}, 0, true},
		{&Union{&Base{"r"}, &Base{"s"}}, 2, false},
		{&Union{&Base{"r"}, &Project{&Base{"r"}, []string{"v"}}}, 0, true},
		{&Difference{&Base{"r"}, &Base{"s"}}, 2, false},
		{&Intersect{[]Expr{&Base{"r"}, &Base{"s"}}}, 2, false},
		{&Intersect{nil}, 0, true},
	}
	for i, c := range cases {
		sch, err := c.expr.Schema(m)
		if c.wantErr {
			if err == nil {
				t.Errorf("case %d (%s): expected error", i, c.expr)
			}
			continue
		}
		if err != nil {
			t.Errorf("case %d (%s): %v", i, c.expr, err)
			continue
		}
		if sch.NumCols() != c.cols {
			t.Errorf("case %d (%s): %d cols, want %d", i, c.expr, sch.NumCols(), c.cols)
		}
	}
}

func TestJoinTypeCheck(t *testing.T) {
	m := NewMapRelations()
	m.Add("a", tuple.MustSchema(tuple.Column{Name: "x", Type: tuple.Int}), nil)
	m.Add("b", tuple.MustSchema(tuple.Column{Name: "y", Type: tuple.String, Size: 4}), nil)
	j := &Join{&Base{"a"}, &Base{"b"}, []JoinCond{{"x", "y"}}}
	if _, err := j.Schema(m); err == nil {
		t.Error("joining int to string should fail the type check")
	}
}

func TestUnionCompatibilityIgnoresNames(t *testing.T) {
	m := NewMapRelations()
	m.Add("a", tuple.MustSchema(tuple.Column{Name: "x", Type: tuple.Int}), nil)
	m.Add("b", tuple.MustSchema(tuple.Column{Name: "y", Type: tuple.Int}), nil)
	if _, err := (&Union{&Base{"a"}, &Base{"b"}}).Schema(m); err != nil {
		t.Errorf("same-type different-name union should be allowed: %v", err)
	}
	m.Add("c", tuple.MustSchema(tuple.Column{Name: "z", Type: tuple.String, Size: 3}), nil)
	if _, err := (&Union{&Base{"a"}, &Base{"c"}}).Schema(m); err == nil {
		t.Error("type-mismatched union must fail")
	}
	m.Add("d", tuple.MustSchema(tuple.Column{Name: "z", Type: tuple.String, Size: 5}), nil)
	if _, err := (&Union{&Base{"c"}, &Base{"d"}}).Schema(m); err == nil {
		t.Error("width-mismatched string union must fail")
	}
}

func TestExprString(t *testing.T) {
	e := &Union{
		&Select{&Base{"r"}, &Cmp{Col{"v"}, Lt, Const{int64(5)}}},
		&Intersect{[]Expr{&Base{"r"}, &Base{"s"}}},
	}
	got := e.String()
	for _, frag := range []string{"union(", "select(r, v < 5)", "intersect(r, s)"} {
		if !strings.Contains(got, frag) {
			t.Errorf("String = %q missing %q", got, frag)
		}
	}
	j := &Join{&Base{"r"}, &Base{"u"}, []JoinCond{{"id", "k"}}}
	if j.String() != "join(r, u, id = k)" {
		t.Errorf("join String = %q", j.String())
	}
	d := &Difference{&Base{"r"}, &Base{"s"}}
	if d.String() != "diff(r, s)" {
		t.Errorf("diff String = %q", d.String())
	}
	p := &Project{&Base{"r"}, []string{"id", "v"}}
	if p.String() != "project(r, [id, v])" {
		t.Errorf("project String = %q", p.String())
	}
}

func TestBaseRelationsAndOccurrences(t *testing.T) {
	e := &Join{
		&Union{&Base{"r"}, &Base{"s"}},
		&Select{&Base{"r"}, True{}},
		[]JoinCond{{"id", "id"}},
	}
	distinct := BaseRelations(e)
	if len(distinct) != 2 || distinct[0] != "r" || distinct[1] != "s" {
		t.Errorf("BaseRelations = %v", distinct)
	}
	occ := BaseOccurrences(e)
	if len(occ) != 3 || occ[0] != "r" || occ[1] != "s" || occ[2] != "r" {
		t.Errorf("BaseOccurrences = %v", occ)
	}
}

func TestHasSetOps(t *testing.T) {
	if HasSetOps(&Select{&Base{"r"}, True{}}) {
		t.Error("select over base has no set ops")
	}
	if !HasSetOps(&Select{&Union{&Base{"r"}, &Base{"s"}}, True{}}) {
		t.Error("nested union should be detected")
	}
	if !HasSetOps(&Join{&Base{"r"}, &Difference{&Base{"r"}, &Base{"s"}}, []JoinCond{{"id", "id"}}}) {
		t.Error("nested difference under join should be detected")
	}
}

func TestEvalExactBasics(t *testing.T) {
	m := testRels()
	count := func(e Expr) int64 {
		t.Helper()
		c, err := CountExact(e, m)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		return c
	}
	if got := count(&Base{"r"}); got != 4 {
		t.Errorf("count(r) = %d", got)
	}
	if got := count(&Select{&Base{"r"}, &Cmp{Col{"v"}, Ge, Const{int64(30)}}}); got != 2 {
		t.Errorf("count(select) = %d", got)
	}
	// u has duplicate k=3; project must dedup.
	if got := count(&Project{&Base{"u"}, []string{"k"}}); got != 2 {
		t.Errorf("count(project) = %d", got)
	}
	// r join u on id=k: id 1 matches once, id 3 matches twice.
	if got := count(&Join{&Base{"r"}, &Base{"u"}, []JoinCond{{"id", "k"}}}); got != 3 {
		t.Errorf("count(join) = %d", got)
	}
	// r ∩ s shares only (3,30).
	if got := count(&Intersect{[]Expr{&Base{"r"}, &Base{"s"}}}); got != 1 {
		t.Errorf("count(intersect) = %d", got)
	}
	// r ∪ s = 4 + 3 − 1.
	if got := count(&Union{&Base{"r"}, &Base{"s"}}); got != 6 {
		t.Errorf("count(union) = %d", got)
	}
	// r − s = 4 − 1.
	if got := count(&Difference{&Base{"r"}, &Base{"s"}}); got != 3 {
		t.Errorf("count(diff) = %d", got)
	}
}

func TestEvalExactJoinOutputsConcatenated(t *testing.T) {
	m := testRels()
	out, err := EvalExact(&Join{&Base{"r"}, &Base{"u"}, []JoinCond{{"id", "k"}}}, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range out {
		if len(tp) != 4 {
			t.Fatalf("join output arity %d, want 4: %v", len(tp), tp)
		}
		if tp[0].(int64) != tp[2].(int64) {
			t.Errorf("join key mismatch in %v", tp)
		}
	}
}

func TestEvalExactErrors(t *testing.T) {
	m := testRels()
	bad := []Expr{
		&Base{"missing"},
		&Select{&Base{"r"}, &Cmp{Col{"zz"}, Lt, Const{int64(0)}}},
		&Union{&Base{"r"}, &Project{&Base{"u"}, []string{"k"}}}, // incompatible arity
	}
	for i, e := range bad {
		if _, err := EvalExact(e, m); err == nil {
			t.Errorf("case %d (%s): expected error", i, e)
		}
	}
}
