package ra

import (
	"math"
	"math/rand"
	"testing"

	"tcq/internal/tuple"
)

// TestCompileBatchMatchesCompile is the row-for-row equivalence pin:
// the vectorized predicate must agree with the scalar compiler on every
// row, across int/float/string operands, NaN, and nested connectives.
func TestCompileBatchMatchesCompile(t *testing.T) {
	schema := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
		tuple.Column{Name: "x", Type: tuple.Float},
		tuple.Column{Name: "s", Type: tuple.String, Size: 4},
	)
	rng := rand.New(rand.NewSource(11))
	b := tuple.NewBatch(schema)
	var rows []tuple.Tuple
	strs := []string{"", "a", "ab", "zzz", "b\x00c"}
	for i := 0; i < 300; i++ {
		x := rng.NormFloat64()
		if i%37 == 0 {
			x = math.NaN()
		}
		r := tuple.Tuple{int64(i), int64(rng.Intn(50) - 25), x, strs[rng.Intn(len(strs))]}
		rows = append(rows, r)
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	ops := []CmpOp{Lt, Le, Eq, Ne, Ge, Gt}
	atoms := []Pred{}
	for _, op := range ops {
		atoms = append(atoms,
			&Cmp{Left: Col{Name: "a"}, Op: op, Right: Const{Value: int64(0)}},
			&Cmp{Left: Const{Value: 3}, Op: op, Right: Col{Name: "a"}},
			&Cmp{Left: Col{Name: "a"}, Op: op, Right: Col{Name: "id"}},
			&Cmp{Left: Col{Name: "x"}, Op: op, Right: Const{Value: 0.5}},
			&Cmp{Left: Col{Name: "x"}, Op: op, Right: Col{Name: "a"}},
			&Cmp{Left: Col{Name: "s"}, Op: op, Right: Const{Value: "ab"}},
		)
	}
	preds := append([]Pred{True{}, &True{}}, atoms...)
	for i := 0; i+3 < len(atoms); i += 4 {
		preds = append(preds,
			&And{L: atoms[i], R: &Or{L: atoms[i+1], R: &Not{P: atoms[i+2]}}},
			&Or{L: &Not{P: atoms[i]}, R: &And{L: atoms[i+2], R: atoms[i+3]}},
		)
	}
	for _, p := range preds {
		scalar, err := Compile(p, schema)
		if err != nil {
			t.Fatalf("Compile(%s): %v", p, err)
		}
		batched, err := CompileBatch(p, schema)
		if err != nil {
			t.Fatalf("CompileBatch(%s): %v", p, err)
		}
		out := make([]bool, b.Len())
		batched(b, out)
		for i, r := range rows {
			if want := scalar(r); out[i] != want {
				t.Fatalf("pred %s row %d (%v): batch=%v scalar=%v", p, i, r, out[i], want)
			}
		}
		// Re-evaluation over a view must reuse internal scratch safely.
		half := b.Slice(0, b.Len()/2)
		out2 := make([]bool, half.Len())
		batched(half, out2)
		for i := range out2 {
			if out2[i] != out[i] {
				t.Fatalf("pred %s view row %d: %v != %v", p, i, out2[i], out[i])
			}
		}
	}
	if _, err := CompileBatch(&Cmp{Left: Col{Name: "nope"}, Op: Eq, Right: Const{Value: int64(1)}}, schema); err == nil {
		t.Error("CompileBatch accepted unknown column")
	}
}
