package ra

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tcq/internal/tuple"
)

func TestTermsSelectOnlyIsIdentity(t *testing.T) {
	m := testRels()
	e := &Select{&Base{"r"}, &Cmp{Col{"v"}, Lt, Const{int64(25)}}}
	terms, err := Terms(e, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || terms[0].Sign != 1 || len(terms[0].Atoms) != 1 {
		t.Fatalf("terms = %v", terms)
	}
	if terms[0].Expr().String() != e.String() {
		t.Errorf("term expr = %s", terms[0].Expr())
	}
}

func TestTermsUnion(t *testing.T) {
	m := testRels()
	terms, err := Terms(&Union{&Base{"r"}, &Base{"s"}}, m)
	if err != nil {
		t.Fatal(err)
	}
	// count(r ∪ s) = count(r) + count(s) − count(r ∩ s).
	if len(terms) != 3 {
		t.Fatalf("union should give 3 terms, got %v", terms)
	}
	signs := map[string]int{}
	for _, tm := range terms {
		signs[tm.Expr().String()] = tm.Sign
	}
	if signs["r"] != 1 || signs["s"] != 1 || signs["intersect(r, s)"] != -1 {
		t.Errorf("signs = %v", signs)
	}
}

func TestTermsDifference(t *testing.T) {
	m := testRels()
	terms, err := Terms(&Difference{&Base{"r"}, &Base{"s"}}, m)
	if err != nil {
		t.Fatal(err)
	}
	// count(r − s) = count(r) − count(r ∩ s).
	if len(terms) != 2 {
		t.Fatalf("difference should give 2 terms, got %v", terms)
	}
}

func TestTermsIdempotence(t *testing.T) {
	m := testRels()
	// r ∩ r must collapse to the single atom r.
	terms, err := Terms(&Intersect{[]Expr{&Base{"r"}, &Base{"r"}}}, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || terms[0].Expr().String() != "r" || terms[0].Sign != 1 {
		t.Errorf("r ∩ r terms = %v", terms)
	}
	// r ∪ r must also collapse: +r +r −r = +r.
	terms, err = Terms(&Union{&Base{"r"}, &Base{"r"}}, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || terms[0].Sign != 1 {
		t.Errorf("r ∪ r terms = %v", terms)
	}
}

func TestTermsPushdownSelectOverUnion(t *testing.T) {
	m := testRels()
	p := &Cmp{Col{"v"}, Lt, Const{int64(100)}}
	e := &Select{&Union{&Base{"r"}, &Base{"s"}}, p}
	terms, err := Terms(e, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range terms {
		for _, a := range tm.Atoms {
			if HasSetOps(a) {
				t.Fatalf("atom %s still has set ops", a)
			}
			if _, ok := a.(*Select); !ok {
				t.Fatalf("expected selects pushed into atoms, got %s", a)
			}
		}
	}
}

func TestTermsJoinOverSetOps(t *testing.T) {
	m := testRels()
	e := &Join{
		&Difference{&Base{"r"}, &Base{"s"}},
		&Base{"u"},
		[]JoinCond{{"id", "k"}},
	}
	terms, err := Terms(e, m)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := CountExact(e, m)
	if err != nil {
		t.Fatal(err)
	}
	viaTerms, err := CountTermsExact(terms, m)
	if err != nil {
		t.Fatal(err)
	}
	if direct != viaTerms {
		t.Errorf("join-over-diff: direct %d, terms %d", direct, viaTerms)
	}
}

func TestTermsProjectOverUnionAllowed(t *testing.T) {
	m := testRels()
	e := &Project{&Union{&Base{"r"}, &Base{"s"}}, []string{"id"}}
	terms, err := Terms(e, m)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := CountExact(e, m)
	viaTerms, _ := CountTermsExact(terms, m)
	if direct != viaTerms {
		t.Errorf("project-over-union: direct %d, terms %d", direct, viaTerms)
	}
}

func TestTermsProjectOverDifferenceUnsupported(t *testing.T) {
	m := testRels()
	e := &Project{&Difference{&Base{"r"}, &Base{"s"}}, []string{"id"}}
	_, err := Terms(e, m)
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("expected ErrUnsupported, got %v", err)
	}
	e2 := &Project{&Intersect{[]Expr{&Base{"r"}, &Base{"s"}}}, []string{"id"}}
	if _, err := Terms(e2, m); !errors.Is(err, ErrUnsupported) {
		t.Errorf("expected ErrUnsupported for project over intersect, got %v", err)
	}
}

func TestTermsValidatesExpression(t *testing.T) {
	m := testRels()
	if _, err := Terms(&Base{"missing"}, m); err == nil {
		t.Error("Terms must validate the expression against the catalog")
	}
}

func TestTermStringRendersSign(t *testing.T) {
	tm := Term{Sign: -1, Atoms: []Expr{&Base{"r"}}}
	if tm.String() != "-1·count(r)" {
		t.Errorf("Term.String = %q", tm.String())
	}
	tm2 := Term{Sign: 2, Atoms: []Expr{&Base{"r"}, &Base{"s"}}}
	if tm2.String() != "+2·count(intersect(r, s))" {
		t.Errorf("Term.String = %q", tm2.String())
	}
}

// randomExpr builds a random expression over three union-compatible
// relations a, b, c with integer columns id, v.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		return &Base{[]string{"a", "b", "c"}[rng.Intn(3)]}
	}
	switch rng.Intn(6) {
	case 0:
		return &Select{
			Input: randomExpr(rng, depth-1),
			Pred:  &Cmp{Col{"v"}, CmpOp(rng.Intn(6)), Const{int64(rng.Intn(40))}},
		}
	case 1:
		return &Union{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
	case 2:
		return &Difference{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
	case 3:
		return &Intersect{[]Expr{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}}
	case 4:
		// Nested select to vary shapes.
		return &Select{
			Input: randomExpr(rng, depth-1),
			Pred: &And{
				&Cmp{Col{"id"}, Ge, Const{int64(rng.Intn(10))}},
				&Cmp{Col{"v"}, Lt, Const{int64(rng.Intn(60))}},
			},
		}
	default:
		return &Base{[]string{"a", "b", "c"}[rng.Intn(3)]}
	}
}

// TestTermsInclusionExclusionProperty is the core correctness property:
// for random expressions and random data, the signed sum of exact counts
// over the SJIP terms equals the exact count of the original expression.
func TestTermsInclusionExclusionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "v", Type: tuple.Int},
	)
	for trial := 0; trial < 120; trial++ {
		m := NewMapRelations()
		for _, name := range []string{"a", "b", "c"} {
			n := rng.Intn(30)
			seen := map[string]bool{}
			var ts []tuple.Tuple
			for len(ts) < n {
				tp := tuple.Tuple{int64(rng.Intn(15)), int64(rng.Intn(50))}
				k := tp.Key(sch, nil)
				if seen[k] {
					continue
				}
				seen[k] = true
				ts = append(ts, tp)
			}
			m.Add(name, sch, ts)
		}
		e := randomExpr(rng, 1+rng.Intn(3))
		terms, err := Terms(e, m)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, e, err)
		}
		direct, err := CountExact(e, m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		viaTerms, err := CountTermsExact(terms, m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if direct != viaTerms {
			t.Fatalf("trial %d: %s\n direct=%d terms=%d\n terms: %s",
				trial, e, direct, viaTerms, fmt.Sprint(terms))
		}
	}
}

// TestTermsDeterministic ensures the canonical form is stable: the same
// expression always yields the same term list.
func TestTermsDeterministic(t *testing.T) {
	m := testRels()
	e := &Union{
		&Difference{&Base{"r"}, &Base{"s"}},
		&Intersect{[]Expr{&Base{"s"}, &Base{"r"}}},
	}
	t1, err := Terms(e, m)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := Terms(e, m)
	if fmt.Sprint(t1) != fmt.Sprint(t2) {
		t.Errorf("terms not deterministic:\n%v\n%v", t1, t2)
	}
}

// TestTermsProjectionWrapProperty: wrapping a random expression in a
// projection either decomposes correctly (count via terms == direct
// count) or is rejected with ErrUnsupported — and rejection only
// happens when the projection sits above a difference/intersection.
func TestTermsProjectionWrapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "v", Type: tuple.Int},
	)
	for trial := 0; trial < 80; trial++ {
		m := NewMapRelations()
		for _, name := range []string{"a", "b", "c"} {
			n := rng.Intn(25)
			seen := map[string]bool{}
			var ts []tuple.Tuple
			for len(ts) < n {
				tp := tuple.Tuple{int64(rng.Intn(12)), int64(rng.Intn(40))}
				k := tp.Key(sch, nil)
				if seen[k] {
					continue
				}
				seen[k] = true
				ts = append(ts, tp)
			}
			m.Add(name, sch, ts)
		}
		inner := randomExpr(rng, 1+rng.Intn(2))
		e := &Project{Input: inner, Cols: []string{"id"}}
		terms, err := Terms(e, m)
		if err != nil {
			if !errors.Is(err, ErrUnsupported) {
				t.Fatalf("trial %d: unexpected error kind: %v", trial, err)
			}
			continue // rejection is a legal outcome for diff/intersect inputs
		}
		direct, err := CountExact(e, m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		viaTerms, err := CountTermsExact(terms, m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if direct != viaTerms {
			t.Fatalf("trial %d: project wrap: direct %d, terms %d (%s)", trial, direct, viaTerms, e)
		}
	}
}
