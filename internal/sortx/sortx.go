// Package sortx implements the external merge sort used by the sample
// executors (step 2 of the paper's Intersect/Join/Project algorithms,
// Figs. 4.4, 4.6, 4.7; cost formula 4.3: C·n·log n + C·n + C).
//
// The sort is run-based: the input is cut into bounded runs, each run is
// sorted in memory, and the runs are merged with a k-way heap merge —
// the classical external sorting structure, even though the "files" are
// in-memory slices in this reproduction. Comparison counts are returned
// so callers can charge CPU cost to the session clock in one step.
//
// Two entry points share one generic core: Sort orders tuples with a
// caller comparator; SortKeyed orders tuples by cached normalized byte
// keys (internal/tuple), comparing with bytes.Compare instead of
// re-walking []Value columns. Both perform identical comparator-call
// sequences for equivalent orderings, so charged comparison counts are
// independent of the entry point used.
package sortx

import (
	"bytes"
	"container/heap"
	"slices"
	"sync"

	"tcq/internal/tuple"
)

// DefaultRunSize is the default number of tuples per initial run,
// modelling the sort buffer of the prototype DBMS.
const DefaultRunSize = 512

// Cmp orders two tuples; negative means a < b.
type Cmp func(a, b tuple.Tuple) int

// Result reports the outcome of an external sort.
type Result struct {
	Sorted      []tuple.Tuple // sorted copy of the input
	Comparisons int64         // comparisons performed (for cost charging)
	Runs        int           // number of initial runs generated
}

// counter tallies comparator invocations without a capturing closure
// per run: one counter per sort call, its method bound once.
type counter[T any] struct {
	cmp func(a, b T) int
	n   int64
}

func (c *counter[T]) compare(a, b T) int {
	c.n++
	return c.cmp(a, b)
}

// sortCore externally sorts items (copied into a contiguous run arena)
// and returns the sorted slice, the comparison count and the number of
// initial runs. The input slice is not modified.
func sortCore[T any](items []T, cmp func(a, b T) int, runSize int) ([]T, int64, int) {
	n := len(items)
	if n == 0 {
		return nil, 0, 0
	}
	c := &counter[T]{cmp: cmp}
	counting := c.compare

	// Phase 1: run generation. Runs are contiguous chunks of one arena,
	// each sorted in place.
	arena := make([]T, n)
	copy(arena, items)
	nRuns := (n + runSize - 1) / runSize
	runs := make([][]T, 0, nRuns)
	for lo := 0; lo < n; lo += runSize {
		hi := min(lo+runSize, n)
		run := arena[lo:hi:hi]
		slices.SortStableFunc(run, counting)
		runs = append(runs, run)
	}
	if len(runs) == 1 {
		return arena, c.n, 1
	}

	// Phase 2: k-way heap merge.
	out := make([]T, 0, n)
	h := &mergeHeap[T]{cmp: counting}
	for i, r := range runs {
		h.items = append(h.items, mergeItem[T]{run: i, item: r[0]})
	}
	heap.Init(h)
	pos := make([]int, len(runs))
	for h.Len() > 0 {
		it := h.items[0]
		out = append(out, it.item)
		pos[it.run]++
		if p := pos[it.run]; p < len(runs[it.run]) {
			h.items[0].item = runs[it.run][p]
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out, c.n, len(runs)
}

// Sort externally sorts ts with the comparator, using runs of at most
// runSize tuples (DefaultRunSize when runSize <= 0). The input slice is
// not modified.
func Sort(ts []tuple.Tuple, cmp Cmp, runSize int) Result {
	if runSize <= 0 {
		runSize = DefaultRunSize
	}
	sorted, comps, runs := sortCore(ts, cmp, runSize)
	return Result{Sorted: sorted, Comparisons: comps, Runs: runs}
}

// KeyedResult reports the outcome of a key-cached external sort: the
// sorted tuples with their normalized keys aligned index-for-index.
type KeyedResult struct {
	Sorted      []tuple.Tuple
	Keys        [][]byte
	Comparisons int64
	Runs        int
}

// idxPool recycles the index arenas of SortKeyed (the hot path of the
// executors: one argsort per side per stage).
var idxPool = sync.Pool{New: func() any { return []int32(nil) }}

// SortKeyed externally sorts ts by the cached normalized keys (keys[i]
// is ts[i]'s key; len(keys) must equal len(ts)), comparing keys with
// bytes.Compare. The comparator-call sequence — and therefore the
// comparison count — is identical to Sort with a comparator that orders
// tuples the way the keys do. Neither input slice is modified.
func SortKeyed(ts []tuple.Tuple, keys [][]byte, runSize int) KeyedResult {
	r := SortKeyedIdx(keys, runSize)
	outT := make([]tuple.Tuple, len(r.Perm))
	for i, j := range r.Perm {
		outT[i] = ts[j]
	}
	return KeyedResult{Sorted: outT, Keys: r.Keys, Comparisons: r.Comparisons, Runs: r.Runs}
}

// IdxResult reports the outcome of an argsort by cached keys: the
// sorting permutation (Perm[i] is the input index of sorted rank i)
// plus the keys gathered into sorted order.
type IdxResult struct {
	Perm        []int32
	Keys        [][]byte
	Comparisons int64
	Runs        int
}

// SortKeyedIdx argsorts the normalized keys and returns the sorting
// permutation, for callers that gather columnar data instead of row
// tuples. The comparator-call sequence is identical to SortKeyed over
// the same keys. The input slice is not modified.
func SortKeyedIdx(keys [][]byte, runSize int) IdxResult {
	if runSize <= 0 {
		runSize = DefaultRunSize
	}
	n := len(keys)
	if n == 0 {
		return IdxResult{}
	}
	// Argsort: order indices by key, then gather. Index moves are 4
	// bytes instead of a tuple header + key header per swap.
	idx := idxPool.Get().([]int32)
	if cap(idx) < n {
		idx = make([]int32, n)
	}
	idx = idx[:n]
	for i := range idx {
		idx[i] = int32(i)
	}
	cmp := func(a, b int32) int { return bytes.Compare(keys[a], keys[b]) }
	sortedIdx, comps, runs := sortCore(idx, cmp, runSize)
	outK := make([][]byte, n)
	for i, j := range sortedIdx {
		outK[i] = keys[j]
	}
	idxPool.Put(idx[:0])
	return IdxResult{Perm: sortedIdx, Keys: outK, Comparisons: comps, Runs: runs}
}

type mergeItem[T any] struct {
	run  int
	item T
}

type mergeHeap[T any] struct {
	items []mergeItem[T]
	cmp   func(a, b T) int
}

func (h *mergeHeap[T]) Len() int           { return len(h.items) }
func (h *mergeHeap[T]) Less(i, j int) bool { return h.cmp(h.items[i].item, h.items[j].item) < 0 }
func (h *mergeHeap[T]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap[T]) Push(x interface{}) { h.items = append(h.items, x.(mergeItem[T])) }
func (h *mergeHeap[T]) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// MergeSorted merges two sorted slices into one sorted slice, returning
// the merged slice and the number of comparisons. Neither input is
// modified. Ties take the left element first (stable).
func MergeSorted(a, b []tuple.Tuple, cmp Cmp) ([]tuple.Tuple, int64) {
	out := make([]tuple.Tuple, 0, len(a)+len(b))
	var comparisons int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		comparisons++
		if cmp(a[i], b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, comparisons
}

// IsSorted reports whether ts is sorted under cmp.
func IsSorted(ts []tuple.Tuple, cmp Cmp) bool {
	for i := 1; i < len(ts); i++ {
		if cmp(ts[i-1], ts[i]) > 0 {
			return false
		}
	}
	return true
}
