// Package sortx implements the external merge sort used by the sample
// executors (step 2 of the paper's Intersect/Join/Project algorithms,
// Figs. 4.4, 4.6, 4.7; cost formula 4.3: C·n·log n + C·n + C).
//
// The sort is run-based: the input is cut into bounded runs, each run is
// sorted in memory, and the runs are merged with a k-way heap merge —
// the classical external sorting structure, even though the "files" are
// in-memory slices in this reproduction. Comparison counts are returned
// so callers can charge CPU cost to the session clock in one step.
package sortx

import (
	"container/heap"
	"sort"

	"tcq/internal/tuple"
)

// DefaultRunSize is the default number of tuples per initial run,
// modelling the sort buffer of the prototype DBMS.
const DefaultRunSize = 512

// Cmp orders two tuples; negative means a < b.
type Cmp func(a, b tuple.Tuple) int

// Result reports the outcome of an external sort.
type Result struct {
	Sorted      []tuple.Tuple // sorted copy of the input
	Comparisons int64         // comparisons performed (for cost charging)
	Runs        int           // number of initial runs generated
}

// Sort externally sorts ts with the comparator, using runs of at most
// runSize tuples (DefaultRunSize when runSize <= 0). The input slice is
// not modified.
func Sort(ts []tuple.Tuple, cmp Cmp, runSize int) Result {
	if runSize <= 0 {
		runSize = DefaultRunSize
	}
	n := len(ts)
	if n == 0 {
		return Result{Sorted: nil, Runs: 0}
	}
	var comparisons int64
	counting := func(a, b tuple.Tuple) int {
		comparisons++
		return cmp(a, b)
	}

	// Phase 1: run generation.
	runs := make([][]tuple.Tuple, 0, (n+runSize-1)/runSize)
	for lo := 0; lo < n; lo += runSize {
		hi := lo + runSize
		if hi > n {
			hi = n
		}
		run := make([]tuple.Tuple, hi-lo)
		copy(run, ts[lo:hi])
		sort.SliceStable(run, func(i, j int) bool { return counting(run[i], run[j]) < 0 })
		runs = append(runs, run)
	}
	if len(runs) == 1 {
		return Result{Sorted: runs[0], Comparisons: comparisons, Runs: 1}
	}

	// Phase 2: k-way heap merge.
	out := make([]tuple.Tuple, 0, n)
	h := &mergeHeap{cmp: counting}
	for i, r := range runs {
		h.items = append(h.items, mergeItem{run: i, tuple: r[0]})
	}
	heap.Init(h)
	pos := make([]int, len(runs))
	for h.Len() > 0 {
		it := h.items[0]
		out = append(out, it.tuple)
		pos[it.run]++
		if p := pos[it.run]; p < len(runs[it.run]) {
			h.items[0].tuple = runs[it.run][p]
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return Result{Sorted: out, Comparisons: comparisons, Runs: len(runs)}
}

type mergeItem struct {
	run   int
	tuple tuple.Tuple
}

type mergeHeap struct {
	items []mergeItem
	cmp   Cmp
}

func (h *mergeHeap) Len() int           { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool { return h.cmp(h.items[i].tuple, h.items[j].tuple) < 0 }
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// MergeSorted merges two sorted slices into one sorted slice, returning
// the merged slice and the number of comparisons. Neither input is
// modified. Ties take the left element first (stable).
func MergeSorted(a, b []tuple.Tuple, cmp Cmp) ([]tuple.Tuple, int64) {
	out := make([]tuple.Tuple, 0, len(a)+len(b))
	var comparisons int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		comparisons++
		if cmp(a[i], b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, comparisons
}

// IsSorted reports whether ts is sorted under cmp.
func IsSorted(ts []tuple.Tuple, cmp Cmp) bool {
	for i := 1; i < len(ts); i++ {
		if cmp(ts[i-1], ts[i]) > 0 {
			return false
		}
	}
	return true
}
