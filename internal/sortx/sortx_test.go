package sortx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcq/internal/tuple"
)

func intTuples(vals ...int64) []tuple.Tuple {
	out := make([]tuple.Tuple, len(vals))
	for i, v := range vals {
		out[i] = tuple.Tuple{v}
	}
	return out
}

func byFirst(a, b tuple.Tuple) int { return tuple.CompareValues(a[0], b[0]) }

func TestSortEmptyAndSingle(t *testing.T) {
	r := Sort(nil, byFirst, 4)
	if len(r.Sorted) != 0 || r.Runs != 0 || r.Comparisons != 0 {
		t.Errorf("empty sort: %+v", r)
	}
	r = Sort(intTuples(7), byFirst, 4)
	if len(r.Sorted) != 1 || r.Runs != 1 {
		t.Errorf("single sort: %+v", r)
	}
}

func TestSortSingleRun(t *testing.T) {
	r := Sort(intTuples(3, 1, 2), byFirst, 10)
	if r.Runs != 1 {
		t.Errorf("runs = %d, want 1", r.Runs)
	}
	if !IsSorted(r.Sorted, byFirst) {
		t.Errorf("not sorted: %v", r.Sorted)
	}
	if r.Comparisons <= 0 {
		t.Error("comparisons should be counted")
	}
}

func TestSortMultiRunMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = rng.Int63n(100)
	}
	in := intTuples(vals...)
	r := Sort(in, byFirst, 64)
	if r.Runs != 16 {
		t.Errorf("runs = %d, want 16", r.Runs)
	}
	if len(r.Sorted) != 1000 {
		t.Fatalf("lost tuples: %d", len(r.Sorted))
	}
	if !IsSorted(r.Sorted, byFirst) {
		t.Error("multi-run output not sorted")
	}
	// Input must be untouched.
	if in[0][0].(int64) != vals[0] {
		t.Error("Sort must not modify its input")
	}
	// Multiset preserved: count occurrences.
	count := map[int64]int{}
	for _, v := range vals {
		count[v]++
	}
	for _, tp := range r.Sorted {
		count[tp[0].(int64)]--
	}
	for v, c := range count {
		if c != 0 {
			t.Fatalf("value %d count off by %d", v, c)
		}
	}
}

func TestSortDefaultRunSize(t *testing.T) {
	in := intTuples(make([]int64, 2*DefaultRunSize+1)...)
	r := Sort(in, byFirst, 0)
	if r.Runs != 3 {
		t.Errorf("default run size: runs = %d, want 3", r.Runs)
	}
}

func TestSortPropertyMatchesReference(t *testing.T) {
	f := func(raw []int16, runSizeRaw uint8) bool {
		runSize := int(runSizeRaw%32) + 1
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		r := Sort(intTuples(vals...), byFirst, runSize)
		if len(r.Sorted) != len(vals) {
			return false
		}
		return IsSorted(r.Sorted, byFirst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortComparisonsScaleNLogN(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func(n int) []tuple.Tuple {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63()
		}
		return intTuples(vals...)
	}
	small := Sort(mk(1000), byFirst, 128).Comparisons
	large := Sort(mk(4000), byFirst, 128).Comparisons
	// 4x input should cost between ~4x and ~7x comparisons (n log n).
	if large < 3*small || large > 9*small {
		t.Errorf("comparison growth suspicious: %d -> %d", small, large)
	}
}

func TestMergeSorted(t *testing.T) {
	a := intTuples(1, 3, 5)
	b := intTuples(2, 3, 6)
	out, comps := MergeSorted(a, b, byFirst)
	want := []int64{1, 2, 3, 3, 5, 6}
	if len(out) != len(want) {
		t.Fatalf("merged %d tuples", len(out))
	}
	for i, w := range want {
		if out[i][0].(int64) != w {
			t.Fatalf("merged = %v", out)
		}
	}
	if comps <= 0 || comps > int64(len(a)+len(b)) {
		t.Errorf("comparisons = %d", comps)
	}
	// Empty sides.
	out, _ = MergeSorted(nil, b, byFirst)
	if len(out) != 3 {
		t.Errorf("merge with empty left = %v", out)
	}
	out, _ = MergeSorted(a, nil, byFirst)
	if len(out) != 3 {
		t.Errorf("merge with empty right = %v", out)
	}
}

func TestMergeSortedStability(t *testing.T) {
	// Ties must take the left element first.
	a := []tuple.Tuple{{int64(1), "left"}}
	b := []tuple.Tuple{{int64(1), "right"}}
	out, _ := MergeSorted(a, b, byFirst)
	if out[0][1] != "left" || out[1][1] != "right" {
		t.Errorf("merge not stable: %v", out)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(nil, byFirst) || !IsSorted(intTuples(1), byFirst) {
		t.Error("trivial slices are sorted")
	}
	if !IsSorted(intTuples(1, 1, 2), byFirst) {
		t.Error("non-strict order is sorted")
	}
	if IsSorted(intTuples(2, 1), byFirst) {
		t.Error("descending should not be sorted")
	}
}
