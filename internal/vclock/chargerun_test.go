package vclock

import (
	"testing"
	"time"
)

// TestChargeRunMatchesChargeLoop pins the batched-charge contract: for
// the same seed, ChargeRun(d, n) must land the clock on exactly the
// same value as n sequential Charge(d) calls, including when runs of
// different durations are interleaved (each charge consumes one jitter
// draw, in order, so the whole duration sequence must line up).
func TestChargeRunMatchesChargeLoop(t *testing.T) {
	runs := []struct {
		d time.Duration
		n int
	}{
		{3 * time.Microsecond, 5},
		{40 * time.Nanosecond, 1},
		{-time.Microsecond, 7}, // ignored: non-positive duration
		{time.Millisecond, 64},
		{250 * time.Nanosecond, 0}, // ignored: non-positive count
		{250 * time.Nanosecond, 1000},
	}
	loop := NewSim(99, 0.05)
	batch := NewSim(99, 0.05)
	loop.SetLoadSigma(0.2)
	batch.SetLoadSigma(0.2)
	for _, r := range runs {
		// Stage boundaries resample load on both clocks identically.
		loop.ResampleLoad()
		batch.ResampleLoad()
		for i := 0; i < r.n; i++ {
			loop.Charge(r.d)
		}
		batch.ChargeRun(r.d, r.n)
		if loop.Now() != batch.Now() {
			t.Fatalf("after run {d=%v n=%d}: loop clock %v != batch clock %v",
				r.d, r.n, loop.Now(), batch.Now())
		}
	}
	if loop.Now() == 0 {
		t.Fatal("clock never advanced; test is vacuous")
	}
}

// TestChargeRunHelperFallsBack checks the package-level helper against
// a Clock that does not implement RunCharger.
func TestChargeRunHelperFallsBack(t *testing.T) {
	ref := NewSim(7, 0.03)
	got := NewSim(7, 0.03)
	ChargeRun(ref, time.Microsecond, 10) // Sim: batched path
	plain := plainClock{got}
	ChargeRun(plain, time.Microsecond, 10) // wrapper: loop path
	if ref.Now() != got.Now() {
		t.Fatalf("helper paths diverge: batched %v, loop %v", ref.Now(), got.Now())
	}
	r := NewReal()
	r.ChargeRun(time.Hour, 3) // must not panic or advance anything
}

// plainClock hides Sim's ChargeRun so the helper takes the loop path.
type plainClock struct{ s *Sim }

func (p plainClock) Now() time.Duration     { return p.s.Now() }
func (p plainClock) Charge(d time.Duration) { p.s.Charge(d) }
