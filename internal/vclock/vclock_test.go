package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimChargeNoJitter(t *testing.T) {
	c := NewSim(1, 0)
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v, want 0", c.Now())
	}
	c.Charge(10 * time.Millisecond)
	c.Charge(5 * time.Millisecond)
	if c.Now() != 15*time.Millisecond {
		t.Errorf("Now = %v, want 15ms", c.Now())
	}
	c.Charge(-time.Second) // ignored
	c.Charge(0)            // ignored
	if c.Now() != 15*time.Millisecond {
		t.Errorf("negative/zero charge changed time: %v", c.Now())
	}
}

func TestSimJitterDeterministicPerSeed(t *testing.T) {
	a := NewSim(42, 0.1)
	b := NewSim(42, 0.1)
	for i := 0; i < 100; i++ {
		a.Charge(time.Millisecond)
		b.Charge(time.Millisecond)
	}
	if a.Now() != b.Now() {
		t.Errorf("same seed diverged: %v vs %v", a.Now(), b.Now())
	}
	c := NewSim(43, 0.1)
	for i := 0; i < 100; i++ {
		c.Charge(time.Millisecond)
	}
	if c.Now() == a.Now() {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestSimJitterStaysPositive(t *testing.T) {
	c := NewSim(7, 5) // absurdly large jitter to hit the floor
	for i := 0; i < 1000; i++ {
		before := c.Now()
		c.Charge(time.Millisecond)
		if c.Now() <= before {
			t.Fatal("charge with jitter must still advance the clock")
		}
	}
}

func TestSimJitterMeanRoughlyUnbiased(t *testing.T) {
	c := NewSim(99, 0.05)
	const n = 20000
	for i := 0; i < n; i++ {
		c.Charge(time.Millisecond)
	}
	got := c.Now().Seconds()
	want := (n * time.Millisecond).Seconds()
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("jittered total %.4fs, want about %.4fs", got, want)
	}
}

func TestSimAdvanceAndReset(t *testing.T) {
	c := NewSim(1, 0.5)
	c.Advance(time.Second)
	if c.Now() != time.Second {
		t.Errorf("Advance should be exact, got %v", c.Now())
	}
	c.Advance(-time.Second)
	if c.Now() != time.Second {
		t.Errorf("negative Advance should be ignored, got %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Reset should rewind to 0, got %v", c.Now())
	}
}

func TestSimConcurrentCharges(t *testing.T) {
	c := NewSim(1, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Charge(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000*time.Microsecond {
		t.Errorf("concurrent total = %v, want 8ms", c.Now())
	}
}

func TestRealClock(t *testing.T) {
	c := NewReal()
	c.Charge(time.Hour) // must be a no-op
	d := c.Now()
	if d < 0 || d > time.Minute {
		t.Errorf("real clock elapsed %v looks wrong", d)
	}
	time.Sleep(2 * time.Millisecond)
	if c.Now() <= d {
		t.Error("real clock should advance with wall time")
	}
}

func TestDeadline(t *testing.T) {
	c := NewSim(1, 0)
	d := NewDeadline(c, 100*time.Millisecond)
	if !d.Armed() {
		t.Fatal("deadline should be armed")
	}
	if d.Expired() {
		t.Fatal("fresh deadline should not be expired")
	}
	if d.Remaining() != 100*time.Millisecond {
		t.Errorf("Remaining = %v", d.Remaining())
	}
	c.Charge(100 * time.Millisecond)
	if d.Expired() {
		t.Error("deadline exactly reached should not count as expired")
	}
	c.Charge(time.Nanosecond)
	if !d.Expired() {
		t.Error("deadline passed should be expired")
	}
	if d.Remaining() >= 0 {
		t.Errorf("Remaining after expiry = %v, want negative", d.Remaining())
	}
}

func TestUnarmedDeadline(t *testing.T) {
	d := Unarmed()
	if d.Armed() || d.Expired() {
		t.Error("unarmed deadline must never expire")
	}
	if d.Remaining() < time.Hour {
		t.Errorf("unarmed Remaining = %v, want huge", d.Remaining())
	}
}

func TestLoadFactor(t *testing.T) {
	c := NewSim(5, 0)
	if c.LoadFactor() != 1 {
		t.Fatalf("initial load = %g, want 1", c.LoadFactor())
	}
	// Without sigma, resampling keeps load at 1.
	c.ResampleLoad()
	if c.LoadFactor() != 1 {
		t.Errorf("load without sigma = %g", c.LoadFactor())
	}
	c.SetLoadSigma(0.5)
	seen := map[float64]bool{}
	for i := 0; i < 50; i++ {
		c.ResampleLoad()
		lf := c.LoadFactor()
		if lf <= 0 {
			t.Fatalf("load factor %g not positive", lf)
		}
		seen[lf] = true
	}
	if len(seen) < 10 {
		t.Error("load factors should vary across resamples")
	}
	// Charges scale with the load factor.
	c.SetLoadSigma(0)
	c.ResampleLoad()
	c.Reset()
	c.Charge(time.Millisecond)
	base := c.Now()
	if base != time.Millisecond {
		t.Errorf("nominal charge = %v", base)
	}
	// Negative sigma clamps to 0.
	c.SetLoadSigma(-1)
	c.ResampleLoad()
	if c.LoadFactor() != 1 {
		t.Errorf("negative sigma load = %g", c.LoadFactor())
	}
}
