// Package vclock provides the clock abstraction the time-constrained
// query engine runs against.
//
// The paper's prototype (ERAM on a SUN 3/60) measured real wall-clock
// time. This reproduction supports two clocks behind one interface:
//
//   - Sim: a virtual clock advanced explicitly by the storage engine and
//     the operator executors as they "do" work. Each charge can carry
//     seeded multiplicative jitter, modelling OS/clock noise. Simulated
//     experiments are deterministic for a given seed and run orders of
//     magnitude faster than the virtual durations they model.
//   - Real: a thin wrapper over time.Now, for in-memory real-time use
//     (the examples use it). Charges are no-ops because the work itself
//     takes real time.
//
// A Deadline helper arms the paper's "timer interrupt": executors poll it
// at block granularity and abort the running stage when it fires.
package vclock

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Clock is the time source for a query session.
//
// Now returns the elapsed time since the clock was created (or reset).
// Charge accounts for d units of simulated work; real clocks ignore it.
type Clock interface {
	Now() time.Duration
	Charge(d time.Duration)
}

// Sim is a deterministic virtual clock. It is safe for concurrent use.
//
// Two noise knobs model a real machine: per-charge jitter (fine-grained
// measurement noise) and a load factor — a multiplier on all charges
// that models background system load. The load factor is resampled via
// ResampleLoad, which the query engine calls once per stage, modelling
// the between-stage load variability of the paper's timeshared SUN
// workstation (the reason the paper needs large d_β values to control
// the overspending risk).
type Sim struct {
	mu        sync.Mutex
	now       time.Duration
	jitter    float64 // stddev of multiplicative noise per charge; 0 = none
	loadSigma float64 // lognormal sigma of the per-stage load factor
	load      float64 // current load multiplier (1 = nominal)
	rng       *rand.Rand
}

// NewSim returns a simulated clock at time zero. jitter is the standard
// deviation of the multiplicative noise applied to every Charge (for
// example 0.05 means each charge is scaled by 1 + N(0, 0.05), floored at
// a tenth of its nominal value). A jitter of 0 disables noise.
func NewSim(seed int64, jitter float64) *Sim {
	if jitter < 0 {
		jitter = 0
	}
	return &Sim{jitter: jitter, load: 1, rng: rand.New(rand.NewSource(seed))}
}

// SetLoadSigma configures the lognormal sigma of the per-stage load
// factor (0 disables load noise). The factor takes effect from the next
// ResampleLoad call.
func (s *Sim) SetLoadSigma(sigma float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sigma < 0 {
		sigma = 0
	}
	s.loadSigma = sigma
}

// ResampleLoad draws a new load factor ~ LogNormal(0, loadSigma). The
// engine calls it at every stage boundary; it is a no-op when load
// noise is disabled.
func (s *Sim) ResampleLoad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.loadSigma <= 0 {
		s.load = 1
		return
	}
	s.load = math.Exp(s.loadSigma * s.rng.NormFloat64())
}

// LoadFactor returns the current load multiplier.
func (s *Sim) LoadFactor() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.load
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Charge advances the virtual clock by d, perturbed by the jitter model.
// Negative charges are ignored.
func (s *Sim) Charge(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	scale := s.load
	if scale == 0 {
		scale = 1
	}
	if s.jitter > 0 {
		scale *= 1 + s.jitter*s.rng.NormFloat64()
	}
	if scale < 0.1 {
		scale = 0.1
	}
	s.now += time.Duration(float64(d) * scale)
}

// ChargeRun accounts for n consecutive charges of d under a single
// lock acquisition. The arithmetic is exactly n sequential Charge(d)
// calls — one jitter draw per charge, in order — so a batched executor
// that collapses a per-tuple loop into one ChargeRun lands on a
// byte-identical clock value to the scalar loop it replaced.
// Non-positive d or n are ignored.
func (s *Sim) ChargeRun(d time.Duration, n int) {
	if d <= 0 || n <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < n; i++ {
		scale := s.load
		if scale == 0 {
			scale = 1
		}
		if s.jitter > 0 {
			scale *= 1 + s.jitter*s.rng.NormFloat64()
		}
		if scale < 0.1 {
			scale = 0.1
		}
		s.now += time.Duration(float64(d) * scale)
	}
}

// Advance moves the clock forward by exactly d with no jitter applied.
// It is used to model idle waiting (for example between PLC scan cycles).
func (s *Sim) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.now += d
	s.mu.Unlock()
}

// Reset rewinds the clock to zero, preserving the jitter stream.
func (s *Sim) Reset() {
	s.mu.Lock()
	s.now = 0
	s.mu.Unlock()
}

// Real is a wall-clock Clock. Charges are ignored.
type Real struct {
	start time.Time
}

// NewReal returns a real clock starting now.
func NewReal() *Real { return &Real{start: time.Now()} }

// Now returns the elapsed wall-clock time since the clock was created.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// Charge is a no-op on a real clock: the work itself consumes time.
func (r *Real) Charge(time.Duration) {}

// ChargeRun is a no-op on a real clock.
func (r *Real) ChargeRun(time.Duration, int) {}

// RunCharger is implemented by clocks that support batched charge runs
// (n identical charges accounted in one call). Sim and Real implement
// it; the executor's lane clock does too.
type RunCharger interface {
	ChargeRun(d time.Duration, n int)
}

// ChargeRun charges n charges of d to c, using the batched path when
// the clock supports it and falling back to n Charge calls otherwise.
// Both paths produce identical clock states for any Clock whose
// ChargeRun honours the RunCharger contract.
func ChargeRun(c Clock, d time.Duration, n int) {
	if rc, ok := c.(RunCharger); ok {
		rc.ChargeRun(d, n)
		return
	}
	for i := 0; i < n; i++ {
		c.Charge(d)
	}
}

// Deadline models the paper's timer interrupt: a point on a Clock after
// which a hard-constrained execution must abort its current stage.
type Deadline struct {
	clock Clock
	at    time.Duration
}

// NewDeadline arms a deadline quota from the clock's current time.
func NewDeadline(c Clock, quota time.Duration) Deadline {
	return Deadline{clock: c, at: c.Now() + quota}
}

// Unarmed returns a deadline that never expires.
func Unarmed() Deadline { return Deadline{} }

// Expired reports whether the deadline has passed. An unarmed deadline
// never expires.
func (d Deadline) Expired() bool {
	return d.clock != nil && d.clock.Now() > d.at
}

// Remaining returns the time left before the deadline, which is negative
// once expired. An unarmed deadline reports a very large remaining time.
func (d Deadline) Remaining() time.Duration {
	if d.clock == nil {
		return 1<<62 - 1
	}
	return d.at - d.clock.Now()
}

// Armed reports whether the deadline is attached to a clock.
func (d Deadline) Armed() bool { return d.clock != nil }
