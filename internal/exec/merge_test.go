package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

// tickClock advances by step on every Now() call, so a deadline armed
// on it expires after a bounded number of polls regardless of charges.
// It stands in for the paper's timer interrupt firing while an executor
// is between charge points.
type tickClock struct {
	t    time.Duration
	step time.Duration
}

func (c *tickClock) Now() time.Duration     { c.t += c.step; return c.t }
func (c *tickClock) Charge(d time.Duration) { c.t += d }

// deadlineEnv builds an Env on a tickClock with a deadline that expires
// after roughly polls deadline checks.
func deadlineEnv(polls int) (*Env, *tickClock) {
	clk := &tickClock{step: time.Millisecond}
	st := storage.NewStore(clk, storage.FastProfile(), storage.DefaultBlockSize)
	env := NewEnv(st)
	env.SetDeadline(vclock.NewDeadline(clk, time.Duration(polls)*time.Millisecond))
	return env, clk
}

// singleKeyNode builds a bare merge node whose runs it joins directly
// (intersect semantics on column 0).
func singleKeyNode(env *Env) (*mergeNode, *tuple.Schema, []tuple.Tuple) {
	sch := tuple.MustSchema(tuple.Column{Name: "a", Type: tuple.Int})
	n := &mergeNode{
		lcols: []int{0}, rcols: []int{0},
		emit: func(l, r tuple.Tuple) tuple.Tuple { return l },
		env:  env,
	}
	run := make([]tuple.Tuple, 100)
	for i := range run {
		run[i] = tuple.Tuple{int64(7)}
	}
	return n, sch, run
}

// TestMergeJoinDeadlineAbortsEmitLoop is the regression test for the
// unbounded equal-key cross-product emit loop: with every tuple sharing
// one key, the pre-fix merge join polled the deadline only on entry
// ((i+j)%16 with i=j=0) and then emitted all |l|·|r| matches without
// ever noticing an expired deadline. The fixed loop polls at block
// granularity and must abort mid-emission.
func TestMergeJoinDeadlineAbortsEmitLoop(t *testing.T) {
	t.Run("legacy", func(t *testing.T) {
		env, _ := deadlineEnv(5)
		n, _, run := singleKeyNode(env)
		_, _, err := n.mergeJoin(run, run)
		if !IsAborted(err) {
			t.Fatalf("mergeJoin on a 100x100 single-key cross product: got err=%v, want deadline abort", err)
		}
	})
	t.Run("keyed", func(t *testing.T) {
		env, _ := deadlineEnv(5)
		n, sch, run := singleKeyNode(env)
		keys := buildNormKeys(run, sch, []int{0})
		sr := sortedRun{ts: run, keys: keys, pres: makePres(keys)}
		_, _, err := n.keyedMergeJoin(sr, sr)
		if !IsAborted(err) {
			t.Fatalf("keyedMergeJoin on a 100x100 single-key cross product: got err=%v, want deadline abort", err)
		}
	})
	// Sanity: with a generous deadline the same join completes in full.
	t.Run("completes", func(t *testing.T) {
		env, _ := deadlineEnv(1 << 20)
		n, _, run := singleKeyNode(env)
		out, comps, err := n.mergeJoin(run, run)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100*100 {
			t.Fatalf("got %d matches, want %d", len(out), 100*100)
		}
		// 1 main-loop comparison + 99 extent comparisons per side.
		if want := int64(1 + 99 + 99); comps != want {
			t.Fatalf("got %d comparisons, want %d", comps, want)
		}
	})
}

// randRun returns a sorted run of (id, a) tuples with the requested key
// skew on column a.
func randRun(rng *rand.Rand, size, maxKey int) []tuple.Tuple {
	ts := make([]tuple.Tuple, size)
	for i := range ts {
		ts[i] = tuple.Tuple{int64(rng.Intn(1 << 16)), int64(rng.Intn(maxKey))}
	}
	cols := []int{1}
	sort.SliceStable(ts, func(a, b int) bool { return tuple.Compare(ts[a], ts[b], cols, cols) < 0 })
	return ts
}

// TestPairCompsMatchesMergeJoin checks that the group-summary formula
// used to charge the simulated clock on the cumulative path reproduces
// the element-level comparison count of the legacy merge join, across
// random run sizes and duplicate distributions (including empty runs
// and runs with a single heavy key).
func TestPairCompsMatchesMergeJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
	)
	for trial := 0; trial < 300; trial++ {
		maxKey := []int{1, 2, 5, 40, 1000}[rng.Intn(5)]
		l := randRun(rng, rng.Intn(60), maxKey)
		r := randRun(rng, rng.Intn(60), maxKey)

		clk := vclock.NewSim(1, 0)
		st := storage.NewStore(clk, storage.FastProfile(), storage.DefaultBlockSize)
		n := &mergeNode{
			lcols: []int{1}, rcols: []int{1},
			emit: func(a, b tuple.Tuple) tuple.Tuple { return a },
			env:  NewEnv(st),
		}
		_, comps, err := n.mergeJoin(l, r)
		if err != nil {
			t.Fatal(err)
		}
		lk := buildNormKeys(l, sch, []int{1})
		rk := buildNormKeys(r, sch, []int{1})
		got := pairComps(groupsOf(lk, makePres(lk)), groupsOf(rk, makePres(rk)))
		if got != comps {
			t.Fatalf("trial %d (|l|=%d |r|=%d maxKey=%d): pairComps=%d, mergeJoin comps=%d",
				trial, len(l), len(r), maxKey, got, comps)
		}
	}
}

// stubNode feeds a merge node a fixed per-stage tuple sequence.
type stubNode struct {
	schema *tuple.Schema
	stages [][]tuple.Tuple
	out    int64
}

func (s *stubNode) ID() int               { return 0 }
func (s *stubNode) Op() OpKind            { return OpBase }
func (s *stubNode) Children() []Node      { return nil }
func (s *stubNode) Schema() *tuple.Schema { return s.schema }
func (s *stubNode) Stats() Stats          { return Stats{CumOut: float64(s.out)} }
func (s *stubNode) CumOutTuples() int64   { return s.out }
func (s *stubNode) Advance(stage int) ([]tuple.Tuple, error) {
	ts := s.stages[stage]
	s.out += int64(len(ts))
	return ts, nil
}

// twinCase is one randomly generated multi-stage merge workload,
// realised over two element-wise equal datasets: one with Int key
// columns (normalized-key fast path) and one with Float key columns
// (legacy per-pair path — CompareValues' NaN semantics rule out byte
// keys, so Float always takes the reference implementation).
type twinCase struct {
	nStages int
	plan    Plan
	op      string // "join" or "intersect"
	intL    [][]tuple.Tuple
	intR    [][]tuple.Tuple
	fltL    [][]tuple.Tuple
	fltR    [][]tuple.Tuple
}

func genTwinCase(rng *rand.Rand) twinCase {
	c := twinCase{nStages: 1 + rng.Intn(5)}
	if rng.Intn(2) == 0 {
		c.plan = FullFulfillment
	} else {
		c.plan = PartialFulfillment
	}
	if rng.Intn(2) == 0 {
		c.op = "join"
	} else {
		c.op = "intersect"
	}
	maxKey := []int{1, 3, 12, 200}[rng.Intn(4)]
	gen := func() (ints, floats [][]tuple.Tuple) {
		for s := 0; s < c.nStages; s++ {
			size := rng.Intn(30) // empty stages included
			it := make([]tuple.Tuple, size)
			ft := make([]tuple.Tuple, size)
			for i := 0; i < size; i++ {
				id, a := int64(rng.Intn(50)), int64(rng.Intn(maxKey))
				it[i] = tuple.Tuple{id, a}
				ft[i] = tuple.Tuple{float64(id), float64(a)}
			}
			ints = append(ints, it)
			floats = append(floats, ft)
		}
		return ints, floats
	}
	c.intL, c.fltL = gen()
	c.intR, c.fltR = gen()
	return c
}

// buildTwin assembles one merge node over stub children.
func buildTwin(t *testing.T, ct tuple.ColType, l, r [][]tuple.Tuple, op string, plan Plan) (Node, *Env, *vclock.Sim) {
	t.Helper()
	clk := vclock.NewSim(11, 0)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	env := NewEnv(st)
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: ct},
		tuple.Column{Name: "a", Type: ct},
	)
	left := &stubNode{schema: sch, stages: l}
	right := &stubNode{schema: sch, stages: r}
	var node Node
	var err error
	if op == "join" {
		node, err = newJoinNode(env, left, right, []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}, plan, nil)
	} else {
		node, err = newIntersectNode(env, left, right, plan, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	return node, env, clk
}

// TestCumulativeMatchesLegacyQuick is the equivalence property test for
// the incremental full-fulfillment rewrite: over random stage counts,
// run sizes (empty runs included), duplicate distributions, operators
// and fulfillment plans, the normalized-key cumulative path must
// produce, stage by stage, (1) the same output tuples in the same
// order, (2) the same simulated clock total, (3) the same recorded step
// units, and (4) the same point-space statistics as the legacy per-pair
// path run on element-wise identical Float data.
func TestCumulativeMatchesLegacyQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := genTwinCase(rng)

		fast, fastEnv, fastClk := buildTwin(t, tuple.Int, c.intL, c.intR, c.op, c.plan)
		if mn := fast.(*mergeNode); !mn.keyed {
			t.Fatal("Int twin did not select the keyed fast path")
		}
		ref, refEnv, refClk := buildTwin(t, tuple.Float, c.fltL, c.fltR, c.op, c.plan)
		if mn := ref.(*mergeNode); mn.keyed {
			t.Fatal("Float twin did not select the legacy path")
		}

		for s := 0; s < c.nStages; s++ {
			fastOut, err := fast.Advance(s)
			if err != nil {
				t.Fatal(err)
			}
			refOut, err := ref.Advance(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(fastOut) != len(refOut) {
				t.Logf("seed %d stage %d (%s/%v): %d vs %d output tuples",
					seed, s, c.op, c.plan, len(fastOut), len(refOut))
				return false
			}
			for i := range fastOut {
				if len(fastOut[i]) != len(refOut[i]) {
					return false
				}
				for col := range fastOut[i] {
					if numeric(fastOut[i][col]) != numeric(refOut[i][col]) {
						t.Logf("seed %d stage %d tuple %d col %d: %v vs %v",
							seed, s, i, col, fastOut[i][col], refOut[i][col])
						return false
					}
				}
			}
			if fastClk.Now() != refClk.Now() {
				t.Logf("seed %d stage %d: clock %v vs %v", seed, s, fastClk.Now(), refClk.Now())
				return false
			}
		}
		fs, rs := fast.Stats(), ref.Stats()
		if fs.CumPoints != rs.CumPoints || fs.CumOut != rs.CumOut {
			t.Logf("seed %d: stats %+v vs %+v", seed, fs, rs)
			return false
		}
		ft, rt := fastEnv.TakeTimings(), refEnv.TakeTimings()
		if len(ft) != len(rt) {
			t.Logf("seed %d: %d vs %d step timings", seed, len(ft), len(rt))
			return false
		}
		for i := range ft {
			if ft[i].Step != rt[i].Step || ft[i].Units != rt[i].Units {
				t.Logf("seed %d: step %d: (%v, %v) vs (%v, %v)",
					seed, i, ft[i].Step, ft[i].Units, rt[i].Step, rt[i].Units)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
