package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

// perfStore builds a store with two relations of n tuples each whose
// join/intersect attribute takes values in [0, card), giving controlled
// duplicate-key group sizes on the merge path.
func perfStore(n int, card int64) *storage.Store {
	clk := vclock.NewSim(1, 0)
	st := storage.NewStore(clk, storage.FastProfile(), storage.DefaultBlockSize)
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
	)
	rng := rand.New(rand.NewSource(7))
	for _, name := range []string{"r1", "r2"} {
		rel, err := st.CreateRelation(name, sch)
		if err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			if err := rel.Append(tuple.Tuple{int64(i), rng.Int63n(card)}); err != nil {
				panic(err)
			}
		}
	}
	return st
}

// runStages advances a freshly built executor tree through `stages`
// equal slices of both relations' blocks (full fulfillment), i.e. the
// paper's Fig. 4.1/4.5 plan with a growing run history.
func runStages(b *testing.B, st *storage.Store, e ra.Expr, stages int) {
	env := NewEnv(st)
	q, err := NewQuery(e, env, StoreCatalog{st}, FullFulfillment)
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range q.Feeds {
		total := f.Rel.NumBlocks()
		per := total / stages
		next := 0
		for s := 0; s < stages; s++ {
			hi := next + per
			if s == stages-1 {
				hi = total
			}
			blocks := make([]int, 0, hi-next)
			for ; next < hi; next++ {
				blocks = append(blocks, next)
			}
			if err := f.LoadStage(blocks); err != nil {
				b.Fatal(err)
			}
		}
	}
	for s := 0; s < stages; s++ {
		if err := q.AdvanceStage(s); err != nil {
			b.Fatal(err)
		}
	}
	env.TakeTimings()
}

// BenchmarkFullFulfillmentStages measures host wall-clock of the full
// fulfillment plan as the stage count grows: the old per-pair Fig. 4.5
// evaluation does 2s+1 merge-joins at stage s (quadratic total), the
// incremental cumulative-run evaluation does two.
func BenchmarkFullFulfillmentStages(b *testing.B) {
	for _, stages := range []int{2, 8, 16} {
		for _, op := range []string{"intersect", "join"} {
			b.Run(fmt.Sprintf("%s/stages=%d", op, stages), func(b *testing.B) {
				var e ra.Expr
				if op == "intersect" {
					e = &ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "r1"}, &ra.Base{Name: "r2"}}}
				} else {
					e = &ra.Join{Left: &ra.Base{Name: "r1"}, Right: &ra.Base{Name: "r2"},
						On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
				}
				st := perfStore(4000, 500)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runStages(b, st, e, stages)
				}
			})
		}
	}
}

// BenchmarkMergeAdvance measures a single high-stage-count Advance in
// isolation: 8 stages of history already accumulated, then one more.
func BenchmarkMergeAdvance(b *testing.B) {
	e := &ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "r1"}, &ra.Base{Name: "r2"}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := perfStore(4000, 500)
		runStages(b, st, e, 9)
	}
}

// BenchmarkProjectStages measures the projection hot path (sort +
// occupancy dedup) over 6 stages.
func BenchmarkProjectStages(b *testing.B) {
	e := &ra.Project{Input: &ra.Base{Name: "r1"}, Cols: []string{"a"}}
	st := perfStore(6000, 700)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStages(b, st, e, 6)
	}
}
