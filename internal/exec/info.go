package exec

import (
	"tcq/internal/ra"
	"tcq/internal/tuple"
)

// NodeInfo is an immutable snapshot of an executor node, consumed by the
// adaptive cost model (internal/cost) and the time-control strategies
// (internal/timectrl) — they predict the next stage's cost from the
// tree's structure and cumulative state without touching live nodes.
type NodeInfo struct {
	ID       int
	Op       OpKind
	Children []*NodeInfo

	// CumOut is the cumulative number of output tuples produced.
	CumOut int64
	// CumPoints is the cumulative point-space coverage of the operator
	// (denominator of its sample selectivity, Fig. 3.3).
	CumPoints float64

	// PredComparisons is the number of atomic comparisons in a select
	// node's predicate (cost weight of one tuple check).
	PredComparisons int

	// Base relation facts (base nodes only).
	BaseName       string
	BaseTuples     int64
	BaseBlocks     int
	BlockingFactor int
	// SRS reports tuple-level simple random sampling (base nodes only);
	// false means cluster (block) sampling.
	SRS bool

	// Plan is the fulfillment plan (merge nodes only).
	Plan Plan
	// NumRuns is the number of per-stage sorted runs held on each side
	// (merge nodes only); stage s+1 merges against all of them under
	// full fulfillment.
	NumRuns int

	// OutTupleSize is the byte width of this node's output tuples.
	OutTupleSize int

	// Src is the relational algebra expression the node evaluates
	// (used by the prestored-selectivity oracle of §3.1).
	Src ra.Expr
}

// Snapshot captures the current state of an executor tree.
func Snapshot(n Node) *NodeInfo {
	info := &NodeInfo{
		ID:           n.ID(),
		Op:           n.Op(),
		CumOut:       n.CumOutTuples(),
		CumPoints:    n.Stats().CumPoints,
		OutTupleSize: n.Schema().TupleSize(),
	}
	for _, c := range n.Children() {
		info.Children = append(info.Children, Snapshot(c))
	}
	switch v := n.(type) {
	case *baseNode:
		info.BaseName = v.feed.Rel.Name()
		info.BaseTuples = v.feed.Rel.NumTuples()
		info.BaseBlocks = v.feed.Rel.NumBlocks()
		info.BlockingFactor = v.feed.Rel.BlockingFactor()
		info.SRS = v.feed.srs
		info.Src = v.src
	case *selectNode:
		info.PredComparisons = v.predSize
		info.Src = v.src
	case *projectNode:
		info.Src = v.src
	case *mergeNode:
		info.Plan = v.plan
		info.NumRuns = v.stages
		info.Src = v.src
	}
	return info
}

// WalkInfo visits every NodeInfo depth-first (children first).
func WalkInfo(n *NodeInfo, fn func(*NodeInfo)) {
	for _, c := range n.Children {
		WalkInfo(c, fn)
	}
	fn(n)
}

// SchemaOf is a convenience returning a node's schema (exported for
// tests in other packages).
func SchemaOf(n Node) *tuple.Schema { return n.Schema() }
