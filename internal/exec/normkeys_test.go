package exec

import (
	"bytes"
	"testing"

	"tcq/internal/tuple"
)

// normKeyFixture builds n two-column tuples plus the same data as a
// columnar batch.
func normKeyFixture(t *testing.T, n int) ([]tuple.Tuple, *tuple.Batch, *tuple.Schema) {
	t.Helper()
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
	)
	ts := make([]tuple.Tuple, 0, n)
	b := tuple.NewBatch(sch)
	for i := 0; i < n; i++ {
		tp := tuple.Tuple{int64(i), int64(i % 13)}
		ts = append(ts, tp)
		if err := b.AppendRow(tp); err != nil {
			t.Fatal(err)
		}
	}
	return ts, b, sch
}

// TestNormKeysIntoMatchesAllocating pins that the pooled builders
// produce byte-identical keys to the allocating ones, across reuse
// (shrinking and growing between calls) and both input forms.
func TestNormKeysIntoMatchesAllocating(t *testing.T) {
	var arena []byte
	var keys [][]byte
	for _, n := range []int{0, 1, 7, 100, 3, 250} {
		ts, b, sch := normKeyFixture(t, n)
		for _, cols := range [][]int{nil, {1}, {1, 0}} {
			want := buildNormKeys(ts, sch, cols)
			arena, keys = buildNormKeysInto(arena, keys, ts, sch, cols)
			if len(keys) != len(want) {
				t.Fatalf("n=%d cols=%v: pooled row build has %d keys, want %d", n, cols, len(keys), len(want))
			}
			for i := range want {
				if !bytes.Equal(keys[i], want[i]) {
					t.Fatalf("n=%d cols=%v key %d: pooled %x, allocating %x", n, cols, i, keys[i], want[i])
				}
			}
			arena, keys = batchNormKeysInto(arena, keys, b, cols)
			if len(keys) != len(want) {
				t.Fatalf("n=%d cols=%v: pooled batch build has %d keys, want %d", n, cols, len(keys), len(want))
			}
			for i := range want {
				if !bytes.Equal(keys[i], want[i]) {
					t.Fatalf("n=%d cols=%v batch key %d: pooled %x, allocating %x", n, cols, i, keys[i], want[i])
				}
			}
		}
	}
}

// TestNormKeysIntoSteadyStateZeroAllocs pins the satellite's pooling
// claim at the source: once the scratch has warmed to the stage size,
// rebuilding a stage's normalized keys allocates nothing — neither for
// the arena nor for the [][]byte headers — on the row path and the
// columnar path alike.
func TestNormKeysIntoSteadyStateZeroAllocs(t *testing.T) {
	ts, b, sch := normKeyFixture(t, 200)
	var arena []byte
	var keys [][]byte
	arena, keys = buildNormKeysInto(arena, keys, ts, sch, nil) // warm

	if allocs := testing.AllocsPerRun(100, func() {
		arena, keys = buildNormKeysInto(arena, keys, ts, sch, nil)
	}); allocs != 0 {
		t.Errorf("warm row key build allocates: %v allocs/op", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		arena, keys = batchNormKeysInto(arena, keys, b, nil)
	}); allocs != 0 {
		t.Errorf("warm batch key build allocates: %v allocs/op", allocs)
	}
}
