// Package exec implements the stage-by-stage sample executors of the
// paper's Section 4: the estimator-evaluation algorithms for Select
// (Fig. 4.3), Intersect (Fig. 4.4), Join (Fig. 4.6) and Project
// (Fig. 4.7) over cluster samples, under the full fulfillment plan
// (every new stage's sample is combined with all previous stages'
// samples, Fig. 4.1/4.5) or the partial fulfillment plan (same-stage
// samples only).
//
// Executors do the real work against the storage engine (charging block
// reads, temp-file writes, sort comparisons and merges to the session
// clock) and record per-step timings that the adaptive cost model
// (internal/cost) fits its coefficients against — exactly the paper's
// run-time coefficient adjustment.
package exec

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"tcq/internal/ra"
	"tcq/internal/sortx"
	"tcq/internal/storage"
	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

// ErrAborted wraps storage.ErrDeadline for stage aborts.
var ErrAborted = storage.ErrDeadline

// OpKind identifies the RA operator a node implements.
type OpKind int

// Operator kinds.
const (
	OpBase OpKind = iota
	OpSelect
	OpJoin
	OpIntersect
	OpProject
)

// String returns the operator name.
func (k OpKind) String() string {
	switch k {
	case OpBase:
		return "base"
	case OpSelect:
		return "select"
	case OpJoin:
		return "join"
	case OpIntersect:
		return "intersect"
	case OpProject:
		return "project"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// StepKind identifies a time-consuming step within an operator (the
// paper derives one cost term per step: write, sort, merge, scan,
// output).
type StepKind int

// Step kinds.
const (
	StepRead   StepKind = iota // reading sampled blocks (base nodes)
	StepScan                   // reading/checking tuples (select, project dedup)
	StepWrite                  // writing sample tuples to temp files
	StepSort                   // external sort of a stage's run
	StepMerge                  // merging runs (intersect/join pairs)
	StepOutput                 // writing output tuples/pages
	StepInit                   // fixed per-stage operator initialisation (overhead)
)

// String returns the step name.
func (k StepKind) String() string {
	switch k {
	case StepRead:
		return "read"
	case StepScan:
		return "scan"
	case StepWrite:
		return "write"
	case StepSort:
		return "sort"
	case StepMerge:
		return "merge"
	case StepOutput:
		return "output"
	case StepInit:
		return "init"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// StepTiming is one observed (units, duration) pair for a node step;
// the adaptive cost model fits coefficient = Σduration/Σunits per
// (node, step).
type StepTiming struct {
	NodeID int
	Op     OpKind
	Step   StepKind
	Units  float64
	Actual time.Duration
}

// Env is the shared execution environment of one query.
type Env struct {
	Store   *storage.Store
	Timings []StepTiming
	// Comparisons counts sort/merge tuple comparisons charged so far;
	// DeadlinePolls counts hard-deadline checks. Both are plain int64
	// increments on the hot path, read by the observability layer as
	// per-stage deltas (internal/core builds trace.Charges from them).
	Comparisons   int64
	DeadlinePolls int64
	nextID        int
	deadline      vclock.Deadline
	// root/lane are set on per-term fork environments during parallel
	// evaluation (see lane.go): node ids are allocated from the root so
	// serial and parallel builds number nodes identically, and charges
	// are recorded on the lane for ordered replay.
	root *Env
	lane *lane
	// subSem (root environments only) grants slots for sub-term
	// parallelism: charge-free sub-tasks inside one operator stage
	// (per-side sorts, the two bucket joins of a merge) may run on an
	// extra goroutine when a slot is free. See runPar.
	subSem chan struct{}
}

// NewEnv creates an execution environment over a store.
func NewEnv(store *storage.Store) *Env {
	return &Env{Store: store}
}

// fork derives a per-term recording environment: same session store and
// deadline, node ids allocated from the root, and all clock charges,
// temp-file counters and step timings captured on a private lane until
// replayLane folds them back in term order.
func (e *Env) fork() *Env {
	return &Env{Store: e.Store, root: e, lane: &lane{}}
}

// Clock returns the clock executors must charge: the per-term recording
// lane during parallel evaluation, the session clock otherwise.
func (e *Env) Clock() vclock.Clock {
	if e.lane != nil {
		return e.lane
	}
	return e.Store.Clock()
}

// NewScratchFile creates a charge-only temp file whose costs flow to
// this environment's charge sink (lane or session store).
func (e *Env) NewScratchFile(schema *tuple.Schema) *storage.TempFile {
	if e.lane != nil {
		return e.Store.NewScratchFileOn(schema, e.lane, &e.lane.counters)
	}
	return e.Store.NewScratchFile(schema)
}

// SetDeadline arms (or disarms, with vclock.Unarmed()) the hard
// deadline honoured by all executors of this environment.
func (e *Env) SetDeadline(dl vclock.Deadline) { e.deadline = dl }

// SetSubWorkers sets the worker budget for sub-term parallelism on the
// root environment: with n > 1, up to n-1 sub-tasks may run on extra
// goroutines concurrently with their spawners (runPar). Must be called
// before evaluation starts. On a single-CPU host no slots are granted:
// a fan-out can never overlap with its spawner there, so even sizes
// past the subParMin floor would pay goroutine handoff for nothing —
// runPar is charge-free, so staying inline changes no result.
func (e *Env) SetSubWorkers(n int) {
	if n > 1 && runtime.GOMAXPROCS(0) > 1 {
		e.subSem = make(chan struct{}, n-1)
	} else {
		e.subSem = nil
	}
}

// armedDeadline returns the deadline executors poll: fork environments
// consult the root (SetDeadline is called between stages on the root).
func (e *Env) armedDeadline() vclock.Deadline {
	if e.root != nil {
		return e.root.deadline
	}
	return e.deadline
}

// subParMin is the smallest per-closure work size (in tuples) worth a
// sub-term fan-out: below it the goroutine handoff plus the cache
// migration of the operands costs more than the overlap buys back, so
// runPar stays inline and parallelism can only ever help.
const subParMin = 512

// runPar runs a and b, on two goroutines when a sub-worker slot is
// free and the smaller closure processes at least size tuples, inline
// (a then b) otherwise. Both closures must be independent and
// charge-free against shared clocks and counters — sorts and
// bucket-join walks qualify, anything that touches e.Clock(),
// e.DeadlinePolls or e.Comparisons does not — so scheduling changes
// wall-clock speed only, never the simulation.
func (e *Env) runPar(size int, a, b func()) {
	root := e
	if e.root != nil {
		root = e.root
	}
	if sem := root.subSem; sem != nil && size >= subParMin {
		select {
		case sem <- struct{}{}:
			done := make(chan struct{})
			go func() {
				defer close(done)
				b()
			}()
			a()
			<-done
			<-sem
			return
		default:
		}
	}
	a()
	b()
}

// pollChargeRun performs n iterations of {poll deadline; charge d} —
// the per-tuple scan accounting shape. When the deadline is unarmed the
// polls cannot fail and read no clock, so the whole run collapses to
// one counter add and one batched charge (one lock, n jitter draws —
// vclock.ChargeRun is draw-for-draw identical to n Charges).
func (e *Env) pollChargeRun(n int, d time.Duration) error {
	if n <= 0 {
		return nil
	}
	if e.armedDeadline().Armed() {
		clock := e.Clock()
		for i := 0; i < n; i++ {
			if err := e.checkDeadline(); err != nil {
				return err
			}
			clock.Charge(d)
		}
		return nil
	}
	e.DeadlinePolls += int64(n)
	vclock.ChargeRun(e.Clock(), d, n)
	return nil
}

// writeRun performs n iterations of {poll deadline; write to f} — the
// output-loop shape of select and merge nodes. f must be a scratch
// file (written tuples are charge-accounted, never stored), so the
// unarmed path batches the writes through TempFile.WriteN.
func (e *Env) writeRun(f *storage.TempFile, n int) error {
	if n <= 0 {
		return nil
	}
	if e.armedDeadline().Armed() {
		for i := 0; i < n; i++ {
			if err := e.checkDeadline(); err != nil {
				return err
			}
			f.Write(nil)
		}
		return nil
	}
	e.DeadlinePolls += int64(n)
	f.WriteN(n)
	return nil
}

// TakeTimings returns and clears the step timings recorded so far.
func (e *Env) TakeTimings() []StepTiming {
	t := e.Timings
	e.Timings = nil
	return t
}

func (e *Env) newID() int {
	if e.root != nil {
		return e.root.newID()
	}
	e.nextID++
	return e.nextID - 1
}

// record logs a step timing. On a lane environment the duration argument
// is a span over the lane's charge log (lane.Now() is an index), kept
// pending until replay resolves it into the real jittered duration.
func (e *Env) record(nodeID int, op OpKind, step StepKind, units float64, actual time.Duration) {
	st := StepTiming{NodeID: nodeID, Op: op, Step: step, Units: units, Actual: actual}
	if e.lane != nil {
		end := int(e.lane.Now())
		e.lane.pending = append(e.lane.pending, laneTiming{t: st, start: end - int(actual), end: end})
		return
	}
	e.Timings = append(e.Timings, st)
}

// chargeInit charges the fixed per-stage initialisation overhead of one
// operator and records it, modelling the paper's per-stage "overhead"
// (the reason more stages cost more for the same overall sample size).
func (e *Env) chargeInit(nodeID int, op OpKind) {
	clock := e.Clock()
	t0 := clock.Now()
	clock.Charge(e.Store.Costs().OpInit)
	e.record(nodeID, op, StepInit, 1, clock.Now()-t0)
}

// chargeChunked charges n units of per-unit cost in bounded chunks,
// checking the hard deadline between chunks so that a timer interrupt
// can abort inside a long sort, merge or write phase (a single bulk
// charge could overshoot the quota by the phase's whole duration).
func (e *Env) chargeChunked(n int64, per time.Duration) error {
	const chunk = 64
	// Every chunked charge today is a batch of tuple comparisons
	// (sort, merge, dedup scans), so the comparison counter lives here.
	e.Comparisons += n
	clock := e.Clock()
	for n > 0 {
		c := n
		if c > chunk {
			c = chunk
		}
		clock.Charge(time.Duration(c) * per)
		n -= c
		if err := e.checkDeadline(); err != nil {
			return err
		}
	}
	return nil
}

// checkDeadline returns ErrAborted when the hard deadline has passed.
// Fork environments consult the root's deadline: SetDeadline is called
// between stages on the root, and hard-deadline queries always run
// serially (an abort point depends on the global charge interleaving,
// which deferred lane charges cannot reproduce).
func (e *Env) checkDeadline() error {
	e.DeadlinePolls++
	if e.armedDeadline().Expired() {
		return fmt.Errorf("exec: stage aborted: %w", ErrAborted)
	}
	return nil
}

// Stats summarises one node's cumulative point-space coverage, used by
// Revise-Selectivities (Fig. 3.3): sel = CumTuples / CumPoints.
type Stats struct {
	CumPoints float64 // points of the operator's point space covered
	CumOut    float64 // output tuples produced
}

// Node is one operator of a term's executor tree. Advance evaluates one
// more stage, returning the node's NEW output tuples for that stage.
type Node interface {
	// ID returns the node's unique id within its Env.
	ID() int
	// Op returns the operator kind.
	Op() OpKind
	// Children returns the input nodes (empty for base nodes).
	Children() []Node
	// Schema returns the node's output schema.
	Schema() *tuple.Schema
	// Advance evaluates stage (0-based) and returns the new outputs.
	// Stages must be advanced in order, exactly once each.
	Advance(stage int) ([]tuple.Tuple, error)
	// Stats returns cumulative selectivity bookkeeping.
	Stats() Stats
	// CumOutTuples returns the cumulative number of output tuples.
	CumOutTuples() int64
}

// Feed supplies the per-stage sample of one base relation, shared by
// every base node over that relation (samples must be drawn once per
// relation per stage, and block reads charged once).
//
// Two sampling techniques are supported (the paper's Fig. 3.2
// decision): cluster sampling, where whole disk blocks are the sample
// units (the prototype's choice — "efficient in sampling and in
// evaluation"), and simple random sampling of tuples, where every
// sampled tuple costs a full block read (the reason the paper rejects
// it for disk-resident data).
type Feed struct {
	Rel       *storage.Relation
	env       *Env
	nodeID    int // pseudo-node id for read-step timings
	srs       bool
	stages    []stageSample
	cumTuples int64
	cumBlocks int
}

// stageSample is one stage's sample in both physical shapes: rows for
// the tuple-at-a-time operators, and — when the relation is columnar —
// the batch the rows were materialized from, which batch-aware
// operators (select scan, project, merge-run key building) consume
// directly. Both views hold the same tuples in the same order.
type stageSample struct {
	rows  []tuple.Tuple
	batch *tuple.Batch
}

func (s *stageSample) len() int {
	if s.batch != nil {
		return s.batch.Len()
	}
	return len(s.rows)
}

// NewFeed creates the sample feed for one base relation.
func NewFeed(env *Env, rel *storage.Relation) *Feed {
	return &Feed{Rel: rel, env: env, nodeID: env.newID()}
}

// SetSRS switches the feed to simple-random-sampling mode: LoadStage's
// indices denote individual tuples instead of blocks. Must be set
// before the first stage loads.
func (f *Feed) SetSRS(srs bool) { f.srs = srs }

// SRS reports whether the feed samples tuples rather than blocks.
func (f *Feed) SRS() bool { return f.srs }

// LoadStage reads the given sample as the feed's next stage: block
// indices under cluster sampling, tuple indices under SRS (each tuple
// read charges one block read — random tuples live in random blocks).
// It charges reads and records the read-step timing. On deadline expiry
// it returns ErrAborted (wrapped); the partially read stage is
// discarded.
func (f *Feed) LoadStage(indices []int) error {
	if f.srs {
		return f.loadStageSRS(indices)
	}
	return f.loadStageCluster(indices)
}

func (f *Feed) loadStageCluster(blocks []int) error {
	f.env.chargeInit(f.nodeID, OpBase)
	clock := f.env.Clock()
	t0 := clock.Now()
	var ss stageSample
	if f.Rel.Columnar() {
		// Columnar relations hand out block views; the stage batch is
		// one bulk copy per block instead of one tuple materialization
		// per tuple. Read charges and deadline semantics are identical
		// to ReadBlockIn. Rows are materialized once, here, because
		// several term executors share the feed concurrently.
		b := tuple.NewBatch(f.Rel.Schema())
		for _, bi := range blocks {
			blk, err := f.Rel.ReadBlockBatchIn(f.env.Store, bi, f.env.deadline)
			if err != nil {
				return err
			}
			if err := b.AppendBatch(blk); err != nil {
				return err
			}
		}
		ss = stageSample{rows: b.Rows(), batch: b}
	} else {
		var ts []tuple.Tuple
		for _, b := range blocks {
			blk, err := f.Rel.ReadBlockIn(f.env.Store, b, f.env.deadline)
			if err != nil {
				return err
			}
			ts = append(ts, blk...)
		}
		ss = stageSample{rows: ts}
	}
	f.env.record(f.nodeID, OpBase, StepRead, float64(len(blocks)), clock.Now()-t0)
	f.stages = append(f.stages, ss)
	f.cumTuples += int64(ss.len())
	f.cumBlocks += len(blocks)
	return nil
}

// loadStageSRS reads individual tuples by global index, charging a full
// block read per tuple.
func (f *Feed) loadStageSRS(tupleIdx []int) error {
	f.env.chargeInit(f.nodeID, OpBase)
	clock := f.env.Clock()
	t0 := clock.Now()
	bf := f.Rel.BlockingFactor()
	var ts []tuple.Tuple
	for _, ti := range tupleIdx {
		blk, err := f.Rel.ReadBlockIn(f.env.Store, ti/bf, f.env.deadline)
		if err != nil {
			return err
		}
		off := ti % bf
		if off >= len(blk) {
			return fmt.Errorf("exec: tuple index %d out of range in %s", ti, f.Rel.Name())
		}
		ts = append(ts, blk[off])
	}
	// Each random tuple costs one block read; the read-step units are
	// the tuples fetched so the cost model fits seconds-per-tuple.
	f.env.record(f.nodeID, OpBase, StepRead, float64(len(tupleIdx)), clock.Now()-t0)
	f.stages = append(f.stages, stageSample{rows: ts})
	f.cumTuples += int64(len(ts))
	f.cumBlocks += len(tupleIdx) // blocks touched (no caching assumed)
	return nil
}

// StageTuples returns the tuples loaded for a stage.
func (f *Feed) StageTuples(stage int) ([]tuple.Tuple, error) {
	if stage < 0 || stage >= len(f.stages) {
		return nil, fmt.Errorf("exec: feed %s has no stage %d", f.Rel.Name(), stage)
	}
	return f.stages[stage].rows, nil
}

// StageBatch returns the columnar view of a loaded stage, or nil when
// the feed's relation is row-backed (or stage is out of range). When
// non-nil, it holds the same tuples as StageTuples in the same order.
func (f *Feed) StageBatch(stage int) *tuple.Batch {
	if stage < 0 || stage >= len(f.stages) {
		return nil
	}
	return f.stages[stage].batch
}

// StageLen returns the number of tuples loaded for a stage (0 when out
// of range).
func (f *Feed) StageLen(stage int) int {
	if stage < 0 || stage >= len(f.stages) {
		return 0
	}
	return f.stages[stage].len()
}

// Stages returns how many stages have been loaded.
func (f *Feed) Stages() int { return len(f.stages) }

// CumTuples returns the cumulative sampled tuple count.
func (f *Feed) CumTuples() int64 { return f.cumTuples }

// CumBlocks returns the cumulative sampled block count.
func (f *Feed) CumBlocks() int { return f.cumBlocks }

// Plan selects between the paper's two cluster-sampling evaluation
// plans.
type Plan int

const (
	// FullFulfillment combines each stage's new sample with all
	// previous stages' samples (Fig. 4.1): after s stages every cross
	// combination of sampled blocks is evaluated.
	FullFulfillment Plan = iota
	// PartialFulfillment combines only same-stage samples; cheaper per
	// stage but covers fewer points for the same I/O ([HoOT 88a]).
	PartialFulfillment
)

// String names the plan.
func (p Plan) String() string {
	if p == PartialFulfillment {
		return "partial"
	}
	return "full"
}

// Build compiles a set-operation-free SJIP expression (an atom of a
// ra.Term, or a whole term via BuildTerm) into an executor tree. feeds
// must contain a Feed for every base relation in the expression.
func Build(e ra.Expr, env *Env, cat ra.Catalog, feeds map[string]*Feed, plan Plan) (Node, error) {
	switch v := e.(type) {
	case *ra.Base:
		feed, ok := feeds[v.Name]
		if !ok {
			return nil, fmt.Errorf("exec: no feed for relation %q", v.Name)
		}
		return newBaseNode(env, feed, v)

	case *ra.Select:
		child, err := Build(v.Input, env, cat, feeds, plan)
		if err != nil {
			return nil, err
		}
		return newSelectNode(env, child, v.Pred, v)

	case *ra.Project:
		child, err := Build(v.Input, env, cat, feeds, plan)
		if err != nil {
			return nil, err
		}
		return newProjectNode(env, child, v.Cols, v)

	case *ra.Join:
		left, err := Build(v.Left, env, cat, feeds, plan)
		if err != nil {
			return nil, err
		}
		right, err := Build(v.Right, env, cat, feeds, plan)
		if err != nil {
			return nil, err
		}
		return newJoinNode(env, left, right, v.On, plan, v)

	case *ra.Intersect:
		if len(v.Inputs) == 0 {
			return nil, fmt.Errorf("exec: empty intersect")
		}
		node, err := Build(v.Inputs[0], env, cat, feeds, plan)
		if err != nil {
			return nil, err
		}
		for i, in := range v.Inputs[1:] {
			right, err := Build(in, env, cat, feeds, plan)
			if err != nil {
				return nil, err
			}
			// The chained binary node denotes the prefix intersection.
			prefix := &ra.Intersect{Inputs: append([]ra.Expr{}, v.Inputs[:i+2]...)}
			node, err = newIntersectNode(env, node, right, plan, prefix)
			if err != nil {
				return nil, err
			}
		}
		return node, nil

	default:
		return nil, fmt.Errorf("exec: unsupported expression %T (set ops must be removed by ra.Terms)", e)
	}
}

// BuildTerm compiles one ra.Term into an executor tree.
func BuildTerm(t ra.Term, env *Env, cat ra.Catalog, feeds map[string]*Feed, plan Plan) (Node, error) {
	return Build(t.Expr(), env, cat, feeds, plan)
}

// ---------------------------------------------------------------------------
// Base node

type baseNode struct {
	id    int
	feed  *Feed
	src   ra.Expr
	stats Stats
}

func newBaseNode(env *Env, feed *Feed, src ra.Expr) (Node, error) {
	// Base nodes share the feed's node id so that the read/init step
	// timings the feed records are attributed to the node the cost
	// model predicts with (several base nodes over one relation share
	// one feed and hence one set of coefficients).
	return &baseNode{id: feed.nodeID, feed: feed, src: src}, nil
}

func (n *baseNode) ID() int               { return n.id }
func (n *baseNode) Op() OpKind            { return OpBase }
func (n *baseNode) Children() []Node      { return nil }
func (n *baseNode) Schema() *tuple.Schema { return n.feed.Rel.Schema() }
func (n *baseNode) Stats() Stats          { return n.stats }
func (n *baseNode) CumOutTuples() int64   { return int64(n.stats.CumOut) }

// Feed returns the node's sample feed (the engine uses it to size the
// point space).
func (n *baseNode) Feed() *Feed { return n.feed }

func (n *baseNode) Advance(stage int) ([]tuple.Tuple, error) {
	ts, err := n.feed.StageTuples(stage)
	if err != nil {
		return nil, err
	}
	n.stats.CumPoints += float64(len(ts))
	n.stats.CumOut += float64(len(ts))
	return ts, nil
}

// BaseFeedOf returns the Feed when n is a base node.
func BaseFeedOf(n Node) (*Feed, bool) {
	b, ok := n.(*baseNode)
	if !ok {
		return nil, false
	}
	return b.feed, true
}

// stageBatchOf returns the columnar stage sample behind n when it is a
// base node over a columnar feed, nil otherwise (derived inputs and
// row-backed relations stay on the tuple path).
func stageBatchOf(n Node, stage int) *tuple.Batch {
	if b, ok := n.(*baseNode); ok {
		return b.feed.StageBatch(stage)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Select node (Fig. 4.3)

type selectNode struct {
	id       int
	child    Node
	pred     ra.CompiledPred
	bpred    ra.BatchPred // vectorized twin of pred; nil = scalar only
	bits     []bool       // reusable batch-predicate output buffer
	predSize int
	src      ra.Expr
	env      *Env
	out      *storage.TempFile
	stats    Stats
}

func newSelectNode(env *Env, child Node, pred ra.Pred, src ra.Expr) (Node, error) {
	compiled, err := ra.Compile(pred, child.Schema())
	if err != nil {
		return nil, err
	}
	size := pred.Comparisons()
	if size < 1 {
		size = 1
	}
	// The batch compiler covers every predicate the scalar compiler
	// does; a nil bpred (future predicate forms) just means the scan
	// stays scalar.
	bpred, err := ra.CompileBatch(pred, child.Schema())
	if err != nil {
		bpred = nil
	}
	return &selectNode{
		id:       env.newID(),
		child:    child,
		pred:     compiled,
		bpred:    bpred,
		predSize: size,
		src:      src,
		env:      env,
		out:      env.NewScratchFile(child.Schema()),
	}, nil
}

func (n *selectNode) ID() int               { return n.id }
func (n *selectNode) Op() OpKind            { return OpSelect }
func (n *selectNode) Children() []Node      { return []Node{n.child} }
func (n *selectNode) Schema() *tuple.Schema { return n.child.Schema() }
func (n *selectNode) Stats() Stats          { return n.stats }
func (n *selectNode) CumOutTuples() int64   { return int64(n.stats.CumOut) }

func (n *selectNode) Advance(stage int) ([]tuple.Tuple, error) {
	// The vectorized scan applies when the input is a columnar base
	// stage and the deadline is unarmed (batched polls cannot reproduce
	// a mid-scan abort; hard-deadline queries keep the scalar loop).
	var bb *tuple.Batch
	if n.bpred != nil && !n.env.armedDeadline().Armed() {
		if base, ok := n.child.(*baseNode); ok {
			bb = base.feed.StageBatch(stage)
		}
	}
	in, err := n.child.Advance(stage)
	if err != nil {
		return nil, err
	}
	n.env.chargeInit(n.id, OpSelect)
	clock := n.env.Clock()
	costs := n.env.Store.Costs()

	// Scan + check each input tuple (cost c1·n of eq. 4.1). Pre-size
	// the output from the cumulative selectivity observed so far.
	t0 := clock.Now()
	hint := len(in)
	if n.stats.CumPoints > 0 {
		hint = int(float64(len(in))*n.stats.CumOut/n.stats.CumPoints) + 16
		if hint > len(in) {
			hint = len(in)
		}
	}
	out := make([]tuple.Tuple, 0, hint)
	if bb != nil {
		// Predicate over column slices, then the per-tuple poll+charge
		// accounting batched into one run (unarmed polls never fail and
		// read no clock, so the collapsed form is observationally
		// identical to the scalar loop).
		if cap(n.bits) < bb.Len() {
			n.bits = make([]bool, bb.Len())
		}
		bits := n.bits[:bb.Len()]
		n.bpred(bb, bits)
		if err := n.env.pollChargeRun(bb.Len(), time.Duration(n.predSize)*costs.TupleCheck); err != nil {
			return nil, err
		}
		for i, keep := range bits {
			if keep {
				out = append(out, in[i])
			}
		}
	} else {
		for _, t := range in {
			if err := n.env.checkDeadline(); err != nil {
				return nil, err
			}
			clock.Charge(time.Duration(n.predSize) * costs.TupleCheck)
			if n.pred(t) {
				out = append(out, t)
			}
		}
	}
	n.env.record(n.id, OpSelect, StepScan, float64(len(in)), clock.Now()-t0)

	// Write output pages (cost C1·p of eq. 4.1).
	t0 = clock.Now()
	if err := n.env.writeRun(n.out, len(out)); err != nil {
		return nil, err
	}
	n.out.Flush()
	n.env.record(n.id, OpSelect, StepOutput, float64(len(out)), clock.Now()-t0)

	n.stats.CumPoints += float64(len(in))
	n.stats.CumOut += float64(len(out))
	return out, nil
}

// ---------------------------------------------------------------------------
// Project node (Fig. 4.7)

type projectNode struct {
	id     int
	child  Node
	idx    []int
	schema *tuple.Schema
	src    ra.Expr
	env    *Env
	temp   *storage.TempFile
	out    *storage.TempFile
	// keyed selects normalized-byte-key dedup: map operations happen
	// once per equal-key group of the sorted run instead of per tuple.
	keyed     bool
	occupancy map[string]int
	stats     Stats
	// keyArena/keyScratch recycle the per-stage normalized-key build
	// across stages: the projection's keys are transient (the occupancy
	// map copies them via string conversion and the sort gathers into
	// its own slice), so unlike the merge sides' retained run keys they
	// can share one arena for the whole query.
	keyArena   []byte
	keyScratch [][]byte
}

func newProjectNode(env *Env, child Node, cols []string, src ra.Expr) (Node, error) {
	schema, idx, err := child.Schema().Project(cols)
	if err != nil {
		return nil, err
	}
	return &projectNode{
		id:        env.newID(),
		child:     child,
		idx:       idx,
		schema:    schema,
		src:       src,
		env:       env,
		temp:      env.NewScratchFile(schema),
		out:       env.NewScratchFile(schema),
		keyed:     tuple.CanNormalizeKeys(schema, nil),
		occupancy: make(map[string]int),
	}, nil
}

func (n *projectNode) ID() int               { return n.id }
func (n *projectNode) Op() OpKind            { return OpProject }
func (n *projectNode) Children() []Node      { return []Node{n.child} }
func (n *projectNode) Schema() *tuple.Schema { return n.schema }
func (n *projectNode) Stats() Stats          { return n.stats }
func (n *projectNode) CumOutTuples() int64   { return int64(n.stats.CumOut) }

// Occupancies returns f_i = number of distinct projected values seen
// exactly i times in the cumulative sample — the input to Goodman's
// estimator.
func (n *projectNode) Occupancies() map[int]int {
	freq := map[int]int{}
	for _, c := range n.occupancy {
		freq[c]++
	}
	return freq
}

// SampledInput returns the cumulative number of input tuples the
// projection has consumed (Goodman's sample size n).
func (n *projectNode) SampledInput() int64 { return int64(n.stats.CumPoints) }

func (n *projectNode) Advance(stage int) ([]tuple.Tuple, error) {
	// Columnar fast path: projection is a column view, the sort works
	// over batch-built keys, and only newly distinct tuples are ever
	// materialized as rows. Applies under the same conditions as the
	// select fast path, plus keyed dedup (the unkeyed walk needs the
	// materialized tuples for map keys).
	var bb *tuple.Batch
	if n.keyed && !n.env.armedDeadline().Armed() {
		if base, ok := n.child.(*baseNode); ok {
			bb = base.feed.StageBatch(stage)
		}
	}
	in, err := n.child.Advance(stage)
	if err != nil {
		return nil, err
	}
	n.env.chargeInit(n.id, OpProject)
	if bb != nil {
		return n.advanceBatch(bb)
	}
	clock := n.env.Clock()
	costs := n.env.Store.Costs()

	// Step 1: write projected attributes to a temporary file.
	t0 := clock.Now()
	projected := make([]tuple.Tuple, len(in))
	for i, t := range in {
		if err := n.env.checkDeadline(); err != nil {
			return nil, err
		}
		projected[i] = t.Project(n.idx)
		n.temp.Write(projected[i])
	}
	n.temp.Flush()
	n.env.record(n.id, OpProject, StepWrite, float64(len(in)), clock.Now()-t0)
	if err := n.env.checkDeadline(); err != nil {
		return nil, err
	}

	// Step 2: sort the temporary file (this stage's run).
	t0 = clock.Now()
	var sorted []tuple.Tuple
	var keys [][]byte
	var comps int64
	if n.keyed {
		n.keyArena, n.keyScratch = buildNormKeysInto(n.keyArena, n.keyScratch, projected, n.schema, nil)
		keys = n.keyScratch
		res := sortx.SortKeyed(projected, keys, 0)
		sorted, keys, comps = res.Sorted, res.Keys, res.Comparisons
	} else {
		res := sortx.Sort(projected, func(a, b tuple.Tuple) int {
			return tuple.Compare(a, b, nil, nil)
		}, 0)
		sorted, comps = res.Sorted, res.Comparisons
	}
	if err := n.env.chargeChunked(comps, costs.TupleCompare); err != nil {
		return nil, err
	}
	n.env.record(n.id, OpProject, StepSort, nLogN(len(projected)), clock.Now()-t0)

	// Step 3: scan, count occupancies, emit newly distinct tuples. The
	// keyed path walks the sorted run group by group so the occupancy
	// map is consulted once per distinct value, not once per tuple; the
	// per-tuple check charge and deadline poll are unchanged.
	t0 = clock.Now()
	var out []tuple.Tuple
	if n.keyed {
		for i := 0; i < len(sorted); {
			j := i + 1
			for j < len(sorted) && bytes.Equal(keys[j], keys[i]) {
				j++
			}
			prior := n.occupancy[string(keys[i])]
			for idx := i; idx < j; idx++ {
				if err := n.env.checkDeadline(); err != nil {
					return nil, err
				}
				clock.Charge(costs.TupleCheck)
				if prior == 0 && idx == i {
					out = append(out, sorted[idx])
					n.out.Write(sorted[idx])
				}
			}
			n.occupancy[string(keys[i])] = prior + (j - i)
			i = j
		}
	} else {
		for _, t := range sorted {
			if err := n.env.checkDeadline(); err != nil {
				return nil, err
			}
			clock.Charge(costs.TupleCheck)
			k := t.Key(n.schema, nil)
			if n.occupancy[k] == 0 {
				out = append(out, t)
				n.out.Write(t)
			}
			n.occupancy[k]++
		}
	}
	n.out.Flush()
	n.env.record(n.id, OpProject, StepScan, float64(len(sorted)), clock.Now()-t0)

	n.stats.CumPoints += float64(len(in))
	n.stats.CumOut += float64(len(out))
	return out, nil
}

// advanceBatch is the columnar Advance of a keyed projection under an
// unarmed deadline: the projection is a zero-copy column view, the sort
// is an argsort over batch-built normalized keys, and only newly
// distinct tuples are materialized as rows. Charges, counters, polls
// and emitted tuples are identical to the scalar path.
func (n *projectNode) advanceBatch(bb *tuple.Batch) ([]tuple.Tuple, error) {
	clock := n.env.Clock()
	costs := n.env.Store.Costs()

	// Step 1: write projected attributes to a temporary file.
	t0 := clock.Now()
	projB := bb.Project(n.schema, n.idx)
	if err := n.env.writeRun(n.temp, projB.Len()); err != nil {
		return nil, err
	}
	n.temp.Flush()
	n.env.record(n.id, OpProject, StepWrite, float64(projB.Len()), clock.Now()-t0)
	if err := n.env.checkDeadline(); err != nil {
		return nil, err
	}

	// Step 2: sort this stage's run.
	t0 = clock.Now()
	n.keyArena, n.keyScratch = batchNormKeysInto(n.keyArena, n.keyScratch, projB, nil)
	res := sortx.SortKeyedIdx(n.keyScratch, 0)
	if err := n.env.chargeChunked(res.Comparisons, costs.TupleCompare); err != nil {
		return nil, err
	}
	n.env.record(n.id, OpProject, StepSort, nLogN(projB.Len()), clock.Now()-t0)

	// Step 3: walk the sorted run group by group. The scalar path's
	// per-tuple poll and check charge are batched around the single
	// first-of-group write, preserving the charge sequence exactly
	// (poll, check charge, then the group winner's write, then the
	// remaining members' poll+charge pairs).
	t0 = clock.Now()
	var out []tuple.Tuple
	keys := res.Keys
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && bytes.Equal(keys[j], keys[i]) {
			j++
		}
		prior := n.occupancy[string(keys[i])]
		if err := n.env.pollChargeRun(1, costs.TupleCheck); err != nil {
			return nil, err
		}
		if prior == 0 {
			t := projB.Row(int(res.Perm[i]))
			out = append(out, t)
			n.out.WriteN(1)
		}
		if err := n.env.pollChargeRun(j-i-1, costs.TupleCheck); err != nil {
			return nil, err
		}
		n.occupancy[string(keys[i])] = prior + (j - i)
		i = j
	}
	n.out.Flush()
	n.env.record(n.id, OpProject, StepScan, float64(projB.Len()), clock.Now()-t0)

	n.stats.CumPoints += float64(bb.Len())
	n.stats.CumOut += float64(len(out))
	return out, nil
}

// ---------------------------------------------------------------------------
// Join and Intersect nodes (Figs. 4.4–4.6)

// mergeNode implements the shared sort-merge machinery of intersect and
// join under full or partial fulfillment: per stage, write both sides'
// new tuples to temp files, sort them into runs F_{j,s}, then merge the
// new run of each side against the other side's runs per Fig. 4.5.
type mergeNode struct {
	id     int
	op     OpKind
	src    ra.Expr
	left   Node
	right  Node
	lcols  []int
	rcols  []int
	schema *tuple.Schema
	emit   func(l, r tuple.Tuple) tuple.Tuple
	env    *Env
	plan   Plan
	stages int // stages advanced (= per-stage runs held on each side)

	// keyed selects the normalized-byte-key fast path (merge.go); runs
	// with Float key columns use the legacy tuple.Compare path.
	keyed bool
	// Fast-path state: per-stage run summaries + cumulative sorted runs.
	lside mergeSide
	rside mergeSide
	// Reusable stage-tag output buckets of the cumulative plan.
	bucketsA [][]tuple.Tuple
	bucketsB [][]tuple.Tuple
	// emitA/emitB are the per-join emitters of the cumulative plan's
	// two physical bucket joins. For join nodes each owns a private
	// arena so the joins can run on separate goroutines (emit is the
	// only mutating call a bucket-join walk makes); for intersects all
	// three emitters are the same stateless function.
	emitA func(l, r tuple.Tuple) tuple.Tuple
	emitB func(l, r tuple.Tuple) tuple.Tuple
	// Legacy-path state: retained sorted runs per stage.
	lruns [][]tuple.Tuple
	rruns [][]tuple.Tuple

	lcum  int64
	rcum  int64
	out   *storage.TempFile
	stats Stats
}

func newJoinNode(env *Env, left, right Node, on []ra.JoinCond, plan Plan, src ra.Expr) (Node, error) {
	lcols, rcols, err := ra.JoinCols(on, left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	schema, err := left.Schema().Concat(right.Schema(), "l", "r")
	if err != nil {
		return nil, err
	}
	n := &mergeNode{
		id: env.newID(), op: OpJoin, src: src, left: left, right: right,
		lcols: lcols, rcols: rcols, schema: schema,
		env: env, plan: plan, out: env.NewScratchFile(schema),
		keyed: tuple.KeysComparable(left.Schema(), lcols, right.Schema(), rcols),
	}
	n.emit = (&concatEmitter{}).emit
	n.emitA = (&concatEmitter{}).emit
	n.emitB = (&concatEmitter{}).emit
	return n, nil
}

// concatEmitter builds joined output tuples l∘r, carving value slices
// out of a block arena so a join's emissions cost one allocation per
// block instead of one per tuple. Blocks are only ever appended to
// through c.arena and each returned tuple is capacity-clamped, so the
// shared backing is invisible to callers.
type concatEmitter struct {
	arena []tuple.Value
}

func (c *concatEmitter) emit(l, r tuple.Tuple) tuple.Tuple {
	need := len(l) + len(r)
	if cap(c.arena)-len(c.arena) < need {
		size := 1 << 13
		if size < need {
			size = need
		}
		c.arena = make([]tuple.Value, 0, size)
	}
	start := len(c.arena)
	c.arena = append(c.arena, l...)
	c.arena = append(c.arena, r...)
	return tuple.Tuple(c.arena[start:len(c.arena):len(c.arena)])
}

func newIntersectNode(env *Env, left, right Node, plan Plan, src ra.Expr) (Node, error) {
	ls, rs := left.Schema(), right.Schema()
	if ls.NumCols() != rs.NumCols() {
		return nil, fmt.Errorf("exec: intersect of incompatible schemas")
	}
	all := make([]int, ls.NumCols())
	for i := range all {
		all[i] = i
	}
	emit := func(l, r tuple.Tuple) tuple.Tuple { return l }
	return &mergeNode{
		id: env.newID(), op: OpIntersect, src: src, left: left, right: right,
		lcols: all, rcols: all, schema: ls,
		emit: emit, emitA: emit, emitB: emit,
		env: env, plan: plan, out: env.NewScratchFile(ls),
		keyed: tuple.KeysComparable(ls, all, rs, all),
	}, nil
}

func (n *mergeNode) ID() int               { return n.id }
func (n *mergeNode) Op() OpKind            { return n.op }
func (n *mergeNode) Children() []Node      { return []Node{n.left, n.right} }
func (n *mergeNode) Schema() *tuple.Schema { return n.schema }
func (n *mergeNode) Stats() Stats          { return n.stats }
func (n *mergeNode) CumOutTuples() int64   { return int64(n.stats.CumOut) }

func (n *mergeNode) keyCmpLR(l, r tuple.Tuple) int {
	return tuple.Compare(l, r, n.lcols, n.rcols)
}

func (n *mergeNode) Advance(stage int) ([]tuple.Tuple, error) {
	newL, err := n.left.Advance(stage)
	if err != nil {
		return nil, err
	}
	newR, err := n.right.Advance(stage)
	if err != nil {
		return nil, err
	}
	n.env.chargeInit(n.id, n.op)
	clock := n.env.Clock()
	costs := n.env.Store.Costs()

	// Step 1: write sample tuples to temporary files (eq. 4.2). The
	// files are charge-only: both samples are already in memory.
	t0 := clock.Now()
	lTemp := n.env.NewScratchFile(n.left.Schema())
	if err := n.env.writeRun(lTemp, len(newL)); err != nil {
		return nil, err
	}
	lTemp.Flush()
	rTemp := n.env.NewScratchFile(n.right.Schema())
	if err := n.env.writeRun(rTemp, len(newR)); err != nil {
		return nil, err
	}
	rTemp.Flush()
	n.env.record(n.id, n.op, StepWrite, float64(len(newL)+len(newR)), clock.Now()-t0)
	if err := n.env.checkDeadline(); err != nil {
		return nil, err
	}

	// Step 2: sort both temporary files (eq. 4.3).
	t0 = clock.Now()
	lRun, rRun, comps := n.sortNewRuns(newL, newR,
		stageBatchOf(n.left, stage), stageBatchOf(n.right, stage))
	if err := n.env.chargeChunked(comps, costs.TupleCompare); err != nil {
		return nil, err
	}
	n.env.record(n.id, n.op, StepSort, nLogN(len(newL))+nLogN(len(newR)), clock.Now()-t0)

	n.stages++

	// Step 3: merge per the fulfillment plan (eq. 4.4, Fig. 4.5). The
	// fast path evaluates the full-fulfillment pair set incrementally
	// against cumulative runs (merge.go); charges are identical.
	t0 = clock.Now()
	var out []tuple.Tuple
	var mergeUnits float64
	switch {
	case !n.keyed:
		out, mergeUnits, err = n.advanceLegacy(lRun.ts, rRun.ts)
	case n.plan == FullFulfillment:
		out, mergeUnits, err = n.advanceCumulative(lRun, rRun)
	default:
		var pc int64
		out, pc, err = n.keyedMergeJoin(lRun, rRun)
		if err == nil {
			err = n.env.chargeChunked(pc, costs.TupleCompare)
			mergeUnits = float64(len(lRun.ts) + len(rRun.ts))
		}
	}
	if err != nil {
		return nil, err
	}
	n.env.record(n.id, n.op, StepMerge, mergeUnits, clock.Now()-t0)

	// Write output pages.
	t0 = clock.Now()
	if err := n.env.writeRun(n.out, len(out)); err != nil {
		return nil, err
	}
	n.out.Flush()
	n.env.record(n.id, n.op, StepOutput, float64(len(out)), clock.Now()-t0)

	// Point-space accounting.
	var newPoints float64
	if n.plan == FullFulfillment {
		newPoints = float64(n.lcum+int64(len(newL)))*float64(n.rcum+int64(len(newR))) -
			float64(n.lcum)*float64(n.rcum)
	} else {
		newPoints = float64(len(newL)) * float64(len(newR))
	}
	n.lcum += int64(len(newL))
	n.rcum += int64(len(newR))
	n.stats.CumPoints += newPoints
	n.stats.CumOut += float64(len(out))
	return out, nil
}

// nLogN returns n·log₂(n) (0 for n <= 1), the sort-step unit measure.
func nLogN(n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n) * math.Log2(float64(n))
}

// Walk visits every node of a tree depth-first (children first).
func Walk(n Node, fn func(Node)) {
	for _, c := range n.Children() {
		Walk(c, fn)
	}
	fn(n)
}

// IsAborted reports whether err is a deadline abort.
func IsAborted(err error) bool { return errors.Is(err, ErrAborted) }
