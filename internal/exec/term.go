package exec

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"tcq/internal/estimator"
	"tcq/internal/ra"
	"tcq/internal/tuple"
)

// TermExec runs one signed SJIP term of the inclusion–exclusion
// decomposition: it owns the term's executor tree and derives the
// term's COUNT estimate from the cumulative sample.
type TermExec struct {
	Term  ra.Term
	Root  Node
	Plan  Plan
	feeds []*Feed // distinct base-relation feeds, sorted by name

	aggCol   int     // aggregated column index in Root's schema; -1 = none
	aggSum   float64 // Σ value over output tuples
	aggSqSum float64 // Σ value² over output tuples

	groupCol int // group-by column index; -1 = none
	groups   map[tuple.Value]int64
}

// NewTermExec builds the executor for one term. feeds must contain a
// Feed for every base relation of the term (feeds are shared across
// terms so each relation is sampled once per stage).
func NewTermExec(term ra.Term, env *Env, cat ra.Catalog, feeds map[string]*Feed, plan Plan) (*TermExec, error) {
	root, err := BuildTerm(term, env, cat, feeds, plan)
	if err != nil {
		return nil, err
	}
	names := ra.BaseRelations(term.Expr())
	sort.Strings(names)
	te := &TermExec{Term: term, Root: root, Plan: plan, aggCol: -1, groupCol: -1}
	for _, n := range names {
		f, ok := feeds[n]
		if !ok {
			return nil, fmt.Errorf("exec: no feed for relation %q", n)
		}
		te.feeds = append(te.feeds, f)
	}
	return te, nil
}

// Feeds returns the term's distinct base-relation feeds.
func (te *TermExec) Feeds() []*Feed { return te.feeds }

// SetAggregate configures SUM/AVG accumulation over the named numeric
// column of the term's output. It fails for unknown or non-numeric
// columns and for projection-rooted terms (a sum over distinct values
// has no point-space estimator here).
func (te *TermExec) SetAggregate(col string) error {
	if _, ok := te.Root.(*projectNode); ok {
		return fmt.Errorf("exec: SUM/AVG over a projection is not supported")
	}
	sch := te.Root.Schema()
	i, ok := sch.ColIndex(col)
	if !ok {
		return fmt.Errorf("exec: unknown aggregate column %q", col)
	}
	switch sch.Col(i).Type {
	case tuple.Int, tuple.Float:
	default:
		return fmt.Errorf("exec: aggregate column %q is not numeric", col)
	}
	te.aggCol = i
	return nil
}

// Advance evaluates one more stage of the term. Feeds must already hold
// the stage's samples (Feed.LoadStage).
func (te *TermExec) Advance(stage int) error {
	out, err := te.Root.Advance(stage)
	if err != nil {
		return err
	}
	if te.aggCol >= 0 {
		for _, t := range out {
			v := numeric(t[te.aggCol])
			te.aggSum += v
			te.aggSqSum += v * v
		}
	}
	if te.groupCol >= 0 {
		for _, t := range out {
			te.groups[t[te.groupCol]]++
		}
	}
	return nil
}

// numeric converts an Int/Float column value to float64.
func numeric(v tuple.Value) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		return 0
	}
}

// PointsEvaluated returns the number of points of the term's point
// space covered by the cumulative sample: Π m_i under full fulfillment,
// Σ_s Π m_{i,s} under partial fulfillment. The point-space dimensions
// are the term's distinct base relations.
func (te *TermExec) PointsEvaluated() float64 {
	if len(te.feeds) == 0 {
		return 0
	}
	if te.Plan == FullFulfillment {
		p := 1.0
		for _, f := range te.feeds {
			p *= float64(f.CumTuples())
		}
		return p
	}
	// Partial fulfillment: only same-stage combinations are covered.
	nStages := te.feeds[0].Stages()
	total := 0.0
	for s := 0; s < nStages; s++ {
		prod := 1.0
		for _, f := range te.feeds {
			ts, err := f.StageTuples(s)
			if err != nil {
				return total
			}
			prod *= float64(len(ts))
		}
		total += prod
	}
	return total
}

// TotalPoints returns the size of the term's point space: Π |r_i| over
// distinct base relations.
func (te *TermExec) TotalPoints() float64 {
	p := 1.0
	for _, f := range te.feeds {
		p *= float64(f.Rel.NumTuples())
	}
	return p
}

// Estimate returns the term's current COUNT estimate.
//
// For Select-Join-Intersect terms this is the cluster-plan point-space
// estimator with the paper's SRS variance approximation. For terms with
// a projection at the root, Goodman's estimator (revised) is applied to
// the projection's occupancy counts, with the population size taken
// from the point-space estimate of the projection's input (the paper
// assumes the input size known; under composition we estimate it —
// see DESIGN.md). A projection nested below other operators falls back
// to the point-space ratio, a documented approximation.
func (te *TermExec) Estimate() estimator.Estimate {
	pointsEval := te.PointsEvaluated()
	if pointsEval <= 0 {
		return estimator.Estimate{}
	}
	totalPoints := te.TotalPoints()
	if proj, ok := te.Root.(*projectNode); ok {
		child := proj.child
		childEst := estimator.PointSpaceCluster(float64(child.CumOutTuples()), pointsEval, totalPoints)
		popN := int64(math.Round(childEst.Value))
		n := proj.SampledInput()
		if popN < n {
			popN = n
		}
		if popN <= 0 {
			return estimator.Estimate{}
		}
		return estimator.DistinctCount(popN, n, proj.Occupancies())
	}
	return estimator.PointSpaceCluster(float64(te.Root.CumOutTuples()), pointsEval, totalPoints)
}

// SumEstimate returns the term's SUM estimate over the configured
// aggregate column (zero Estimate when SetAggregate was not called or
// no points are covered yet).
func (te *TermExec) SumEstimate() estimator.Estimate {
	if te.aggCol < 0 {
		return estimator.Estimate{}
	}
	s := estimator.SumSample{
		Points: te.PointsEvaluated(),
		Count:  float64(te.Root.CumOutTuples()),
		Sum:    te.aggSum,
		SumSq:  te.aggSqSum,
	}
	return estimator.PointSpaceSum(s, te.TotalPoints())
}

// HasRootProjection reports whether the term's top operator is a
// projection (Goodman path).
func (te *TermExec) HasRootProjection() bool {
	_, ok := te.Root.(*projectNode)
	return ok
}

// Query bundles the term executors of one COUNT(E) query with the
// shared feeds, and combines their estimates.
type Query struct {
	Terms []*TermExec
	Feeds map[string]*Feed
	Env   *Env
	Plan  Plan

	// workers > 1 selects deterministic parallel stage evaluation: each
	// term executes on its own lane environment (termEnvs[i]), and the
	// recorded charges are replayed onto the session clock in term order
	// after every stage (see lane.go).
	workers  int
	termEnvs []*Env
}

// FeedNames returns the feed relation names in sorted order. Callers
// that draw from a shared RNG or charge the session clock per feed must
// iterate feeds in this order, not Go's randomized map order, or
// identical seeds produce different runs.
func (q *Query) FeedNames() []string {
	names := make([]string, 0, len(q.Feeds))
	for name := range q.Feeds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewQuery decomposes COUNT(e) into signed terms and builds an executor
// per term, with one shared Feed per distinct base relation. Stages are
// evaluated serially; see NewParallelQuery.
func NewQuery(e ra.Expr, env *Env, cat ra.Catalog, plan Plan) (*Query, error) {
	return NewParallelQuery(e, env, cat, plan, 1)
}

// NewParallelQuery is NewQuery with a worker budget for stage
// evaluation; the budget feeds both tiers of parallelism (see
// NewTieredParallelQuery).
func NewParallelQuery(e ra.Expr, env *Env, cat ra.Catalog, plan Plan, workers int) (*Query, error) {
	return NewTieredParallelQuery(e, env, cat, plan, workers, workers)
}

// NewTieredParallelQuery builds a query with a split worker budget.
//
// termWorkers bounds term-level parallelism: with termWorkers > 1 each
// signed SJIP term is built on a forked lane environment so terms can
// execute concurrently; replaying the lanes in term order afterwards
// reproduces the exact serial charge sequence, so any worker count
// yields byte-identical estimates, timings and traces. Feeds always
// belong to the root environment: samples are drawn and loaded serially
// (they consume the query's seeded RNG stream).
//
// subWorkers bounds sub-term parallelism: charge-free sub-tasks inside
// one operator stage (a merge's two run sorts, the cumulative plan's
// two bucket joins) may fan out to up to subWorkers-1 extra goroutines
// (Env.runPar). This is what lets a single-term query — a pure join or
// intersection, where term-level parallelism degenerates to one lane —
// and hard-deadline queries (termWorkers forced to 1) still use more
// than one core, again without touching the simulated timeline.
func NewTieredParallelQuery(e ra.Expr, env *Env, cat ra.Catalog, plan Plan, termWorkers, subWorkers int) (*Query, error) {
	terms, err := ra.Terms(e, cat)
	if err != nil {
		return nil, err
	}
	feeds := map[string]*Feed{}
	for _, name := range ra.BaseRelations(e) {
		rel, err := env.Store.Relation(name)
		if err != nil {
			return nil, err
		}
		feeds[name] = NewFeed(env, rel)
	}
	if termWorkers < 1 {
		termWorkers = 1
	}
	if len(terms) == 1 {
		// One term has nothing to fan out at this tier; running it inline
		// on the engine goroutine IS the serial charge order, so the lane
		// record/replay machinery would be pure overhead. Sub-term
		// parallelism below still applies.
		termWorkers = 1
	}
	env.SetSubWorkers(subWorkers)
	q := &Query{Feeds: feeds, Env: env, Plan: plan, workers: termWorkers}
	for _, t := range terms {
		tenv := env
		if termWorkers > 1 {
			tenv = env.fork()
			q.termEnvs = append(q.termEnvs, tenv)
		}
		te, err := NewTermExec(t, tenv, cat, feeds, plan)
		if err != nil {
			return nil, err
		}
		q.Terms = append(q.Terms, te)
	}
	return q, nil
}

// AdvanceStage evaluates stage over all terms (feeds must be loaded).
// With a worker budget > 1 the terms run concurrently on their lane
// environments and the recorded work is folded back in term order, so
// the session clock, counters and timings end the stage in exactly the
// state a serial evaluation would have produced.
func (q *Query) AdvanceStage(stage int) error {
	if q.workers <= 1 || len(q.termEnvs) == 0 {
		for _, te := range q.Terms {
			if err := te.Advance(stage); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(q.Terms))
	sem := make(chan struct{}, q.workers)
	var wg sync.WaitGroup
	for i, te := range q.Terms {
		wg.Add(1)
		go func(i int, te *TermExec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = te.Advance(stage)
		}(i, te)
	}
	wg.Wait()
	// Replay in fixed term order — the serial charge sequence. On error,
	// replay only the prefix a serial run would have executed (terms
	// after the first failure never ran serially).
	for i, tenv := range q.termEnvs {
		tenv.replayLane(q.Env)
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// SetAggregate configures SUM/AVG accumulation over the named column on
// every term.
func (q *Query) SetAggregate(col string) error {
	for _, te := range q.Terms {
		if err := te.SetAggregate(col); err != nil {
			return err
		}
	}
	return nil
}

// SumEstimate combines the signed per-term SUM estimates.
func (q *Query) SumEstimate() estimator.Estimate {
	parts := make([]estimator.TermEstimate, 0, len(q.Terms))
	for _, te := range q.Terms {
		parts = append(parts, estimator.TermEstimate{
			Sign:     te.Term.Sign,
			Estimate: te.SumEstimate(),
		})
	}
	return estimator.Combine(parts)
}

// Estimate combines the signed term estimates (Principle of Inclusion
// and Exclusion).
func (q *Query) Estimate() estimator.Estimate {
	parts := make([]estimator.TermEstimate, 0, len(q.Terms))
	for _, te := range q.Terms {
		parts = append(parts, estimator.TermEstimate{
			Sign:     te.Term.Sign,
			Estimate: te.Estimate(),
		})
	}
	return estimator.Combine(parts)
}

// SampledBlocks returns the total number of distinct disk blocks
// sampled across all relations (the "blocks" column of the paper's
// experiment tables).
func (q *Query) SampledBlocks() int {
	total := 0
	for _, f := range q.Feeds {
		total += f.CumBlocks()
	}
	return total
}
