package exec

import (
	"fmt"
	"sort"

	"tcq/internal/estimator"
	"tcq/internal/tuple"
)

// Group-by COUNT estimation: an extension in the spirit of the paper's
// "any aggregate, given an estimator" remark. Each group g of a
// low-cardinality column defines the derived query COUNT(σ_{col=g}(E)),
// and every group's estimator shares the one sampled evaluation: the
// term executor tallies output tuples per group value, and each group's
// count is estimated with the same point-space ratio as the scalar
// COUNT.

// GroupEstimate is one group's COUNT estimate.
type GroupEstimate struct {
	// Key is the group's column value (int64, float64 or string).
	Key tuple.Value
	// Estimate is the group's COUNT estimate.
	Estimate estimator.Estimate
}

// SetGroupBy configures per-group tallying over the named column of the
// term's output. Like SetAggregate, it rejects projection-rooted terms.
func (te *TermExec) SetGroupBy(col string) error {
	if _, ok := te.Root.(*projectNode); ok {
		return fmt.Errorf("exec: GROUP BY over a projection is not supported")
	}
	sch := te.Root.Schema()
	i, ok := sch.ColIndex(col)
	if !ok {
		return fmt.Errorf("exec: unknown group-by column %q", col)
	}
	te.groupCol = i
	te.groups = make(map[tuple.Value]int64)
	return nil
}

// GroupTallies returns the cumulative per-group output tuple counts.
func (te *TermExec) GroupTallies() map[tuple.Value]int64 { return te.groups }

// groupEstimate returns one group's COUNT estimate for this term.
func (te *TermExec) groupEstimate(key tuple.Value) estimator.Estimate {
	pointsEval := te.PointsEvaluated()
	if pointsEval <= 0 {
		return estimator.Estimate{}
	}
	return estimator.PointSpaceCluster(float64(te.groups[key]), pointsEval, te.TotalPoints())
}

// SetGroupBy configures per-group tallying on every term of the query.
func (q *Query) SetGroupBy(col string) error {
	for _, te := range q.Terms {
		if err := te.SetGroupBy(col); err != nil {
			return err
		}
	}
	return nil
}

// GroupEstimates combines the signed per-term group estimates across
// every group value observed in any term, sorted by key for
// deterministic output.
func (q *Query) GroupEstimates() []GroupEstimate {
	keys := map[tuple.Value]bool{}
	for _, te := range q.Terms {
		for k := range te.groups {
			keys[k] = true
		}
	}
	out := make([]GroupEstimate, 0, len(keys))
	for k := range keys {
		parts := make([]estimator.TermEstimate, 0, len(q.Terms))
		for _, te := range q.Terms {
			parts = append(parts, estimator.TermEstimate{
				Sign:     te.Term.Sign,
				Estimate: te.groupEstimate(k),
			})
		}
		out = append(out, GroupEstimate{Key: k, Estimate: estimator.Combine(parts)})
	}
	sort.Slice(out, func(i, j int) bool { return lessValue(out[i].Key, out[j].Key) })
	return out
}

// lessValue orders group keys of mixed numeric/string types (numbers
// before strings; within a kind, natural order).
func lessValue(a, b tuple.Value) bool {
	_, aStr := a.(string)
	_, bStr := b.(string)
	if aStr != bStr {
		return !aStr
	}
	if aStr {
		return a.(string) < b.(string)
	}
	return tuple.CompareValues(a, b) < 0
}
