package exec

import (
	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/tuple"
)

// StoreCatalog adapts a storage.Store to ra.Catalog and ra.Relations.
// RelationTuples reads without charging the clock (it exists for exact
// ground-truth evaluation, not for query execution).
type StoreCatalog struct {
	Store *storage.Store
}

var _ ra.Relations = StoreCatalog{}

// RelationSchema implements ra.Catalog.
func (c StoreCatalog) RelationSchema(name string) (*tuple.Schema, error) {
	rel, err := c.Store.Relation(name)
	if err != nil {
		return nil, err
	}
	return rel.Schema(), nil
}

// RelationTuples implements ra.Relations (uncharged; for ground truth).
func (c StoreCatalog) RelationTuples(name string) ([]tuple.Tuple, error) {
	rel, err := c.Store.Relation(name)
	if err != nil {
		return nil, err
	}
	return rel.AllTuples(), nil
}
