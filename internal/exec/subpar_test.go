package exec

import (
	"fmt"
	"testing"

	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/vclock"
)

// subFanOutFingerprint evaluates e in one full-census stage at a
// 4-worker budget; with force it grants sub-worker slots directly, so
// the runPar goroutine branch runs even on hosts where SetSubWorkers
// would decline them (GOMAXPROCS == 1).
func subFanOutFingerprint(t *testing.T, st *storage.Store, clk *vclock.Sim, e ra.Expr, force bool) string {
	t.Helper()
	env := NewEnv(st)
	q, err := NewParallelQuery(e, env, StoreCatalog{st}, FullFulfillment, 4)
	if err != nil {
		t.Fatal(err)
	}
	if force {
		env.subSem = make(chan struct{}, 3)
	}
	for _, name := range q.FeedNames() {
		f := q.Feeds[name]
		all := make([]int, f.Rel.NumBlocks())
		for i := range all {
			all[i] = i
		}
		if err := f.LoadStage(all); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	est := q.Estimate()
	return fmt.Sprintf("est=%v var=%v clock=%d polls=%d comps=%d counters=%+v",
		est.Value, est.Variance, clk.Now(), env.DeadlinePolls, env.Comparisons, st.Counters())
}

// TestSubTermForcedFanOutEquivalence pins the runPar contract where the
// goroutine branch actually executes: with forced sub-worker slots and
// stages far above the subParMin floor, the fanned-out sorts and merge
// folds must leave the simulated machine — clock, polls, comparisons,
// I/O counters — exactly where the inline schedule leaves it. Run under
// -race this is also the data-race coverage for the sub-term tier,
// independent of the host's CPU count.
func TestSubTermForcedFanOutEquivalence(t *testing.T) {
	exprs := map[string]ra.Expr{
		"join": &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"},
			On: []ra.JoinCond{{LeftCol: "id", RightCol: "id"}}},
		"intersect": &ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "r"}, &ra.Base{Name: "s"}}},
	}
	for name, e := range exprs {
		inlineSt, inlineClk := buildBoundaryStore(t, 3000, true)
		want := subFanOutFingerprint(t, inlineSt, inlineClk, e, false)
		forcedSt, forcedClk := buildBoundaryStore(t, 3000, true)
		got := subFanOutFingerprint(t, forcedSt, forcedClk, e, true)
		if got != want {
			t.Errorf("%s: forced sub-term fan-out diverged:\ninline: %s\nforced: %s", name, want, got)
		}
	}
}
