package exec

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tcq/internal/ra"
	"tcq/internal/sampling"
	"tcq/internal/stats"
	"tcq/internal/storage"
	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

// fixture builds a store with two relations r and s:
//
//	r(id, a): 200 tuples, id 0..199, a = id % 20
//	s(id, a): 200 tuples, id 100..299, a = id % 20
//
// so r ∩ s would be empty on full tuples unless values align; we make s
// share ids 100..199 with identical tuples for intersect tests.
func fixture(t *testing.T, seed int64) (*storage.Store, *vclock.Sim) {
	t.Helper()
	clk := vclock.NewSim(seed, 0)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
	)
	r, err := st.CreateRelation("r", sch)
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.CreateRelation("s", sch)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := r.Append(tuple.Tuple{i, i % 20}); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(tuple.Tuple{i + 100, (i + 100) % 20}); err != nil {
			t.Fatal(err)
		}
	}
	return st, clk
}

// loadAll loads every block of every feed as a single stage.
func loadAll(t *testing.T, q *Query) {
	t.Helper()
	for _, f := range q.Feeds {
		blocks := make([]int, f.Rel.NumBlocks())
		for i := range blocks {
			blocks[i] = i
		}
		if err := f.LoadStage(blocks); err != nil {
			t.Fatal(err)
		}
	}
}

// loadStages splits each relation's blocks into k random stages.
func loadStages(t *testing.T, q *Query, k int, rng *rand.Rand) {
	t.Helper()
	for _, f := range q.Feeds {
		d := f.Rel.NumBlocks()
		smp := sampling.NewBlockSampler(d, rng)
		per := d / k
		for i := 0; i < k; i++ {
			n := per
			if i == k-1 {
				n = smp.Remaining()
			}
			if err := f.LoadStage(smp.Draw(n)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func mustQuery(t *testing.T, st *storage.Store, e ra.Expr, plan Plan) (*Query, *Env) {
	t.Helper()
	env := NewEnv(st)
	q, err := NewQuery(e, env, StoreCatalog{st}, plan)
	if err != nil {
		t.Fatal(err)
	}
	return q, env
}

func exactCount(t *testing.T, st *storage.Store, e ra.Expr) int64 {
	t.Helper()
	c, err := ra.CountExact(e, StoreCatalog{st})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fullSampleExact asserts that a census sample reproduces the exact
// count with zero (or near-zero) estimator error.
func fullSampleExact(t *testing.T, e ra.Expr, stages int) {
	t.Helper()
	st, _ := fixture(t, 1)
	want := exactCount(t, st, e)
	q, _ := mustQuery(t, st, e, FullFulfillment)
	if stages == 1 {
		loadAll(t, q)
	} else {
		loadStages(t, q, stages, rand.New(rand.NewSource(7)))
	}
	for s := 0; s < stages; s++ {
		if err := q.AdvanceStage(s); err != nil {
			t.Fatal(err)
		}
	}
	got := q.Estimate()
	if math.Abs(got.Value-float64(want)) > 1e-6 {
		t.Errorf("%s: census estimate = %g, exact = %d", e, got.Value, want)
	}
}

func TestCensusSelect(t *testing.T) {
	e := &ra.Select{Input: &ra.Base{Name: "r"}, Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(5)}}}
	fullSampleExact(t, e, 1)
	fullSampleExact(t, e, 3)
}

func TestCensusJoin(t *testing.T) {
	e := &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}, On: []ra.JoinCond{{LeftCol: "id", RightCol: "id"}}}
	fullSampleExact(t, e, 1)
	fullSampleExact(t, e, 4)
}

func TestCensusIntersect(t *testing.T) {
	e := &ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "r"}, &ra.Base{Name: "s"}}}
	fullSampleExact(t, e, 1)
	fullSampleExact(t, e, 3)
}

func TestCensusUnionViaTerms(t *testing.T) {
	e := &ra.Union{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}}
	fullSampleExact(t, e, 1)
	fullSampleExact(t, e, 2)
}

func TestCensusDifferenceViaTerms(t *testing.T) {
	e := &ra.Difference{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}}
	fullSampleExact(t, e, 1)
	fullSampleExact(t, e, 3)
}

func TestCensusProject(t *testing.T) {
	e := &ra.Project{Input: &ra.Base{Name: "r"}, Cols: []string{"a"}}
	fullSampleExact(t, e, 1)
	fullSampleExact(t, e, 2)
}

func TestCensusSelectJoinCompound(t *testing.T) {
	e := &ra.Join{
		Left:  &ra.Select{Input: &ra.Base{Name: "r"}, Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(10)}}},
		Right: &ra.Base{Name: "s"},
		On:    []ra.JoinCond{{LeftCol: "a", RightCol: "a"}},
	}
	fullSampleExact(t, e, 1)
	fullSampleExact(t, e, 3)
}

func TestMultiStageMatchesSingleStage(t *testing.T) {
	// Full fulfillment: splitting the census into stages must cover the
	// same points and produce the same final y (order differs only).
	st1, _ := fixture(t, 1)
	e := &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}, On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	q1, _ := mustQuery(t, st1, e, FullFulfillment)
	loadAll(t, q1)
	if err := q1.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}

	st2, _ := fixture(t, 1)
	q2, _ := mustQuery(t, st2, e, FullFulfillment)
	loadStages(t, q2, 5, rand.New(rand.NewSource(3)))
	for s := 0; s < 5; s++ {
		if err := q2.AdvanceStage(s); err != nil {
			t.Fatal(err)
		}
	}
	y1 := q1.Terms[0].Root.CumOutTuples()
	y2 := q2.Terms[0].Root.CumOutTuples()
	if y1 != y2 {
		t.Errorf("multi-stage full fulfillment y = %d, single-stage = %d", y2, y1)
	}
	p1 := q1.Terms[0].PointsEvaluated()
	p2 := q2.Terms[0].PointsEvaluated()
	if p1 != p2 {
		t.Errorf("points evaluated %g vs %g", p2, p1)
	}
}

func TestPartialFulfillmentCoversFewerPoints(t *testing.T) {
	st, _ := fixture(t, 1)
	e := &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}, On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	q, _ := mustQuery(t, st, e, PartialFulfillment)
	loadStages(t, q, 4, rand.New(rand.NewSource(11)))
	for s := 0; s < 4; s++ {
		if err := q.AdvanceStage(s); err != nil {
			t.Fatal(err)
		}
	}
	te := q.Terms[0]
	full := 1.0
	for _, f := range te.Feeds() {
		full *= float64(f.CumTuples())
	}
	if got := te.PointsEvaluated(); got >= full {
		t.Errorf("partial plan covered %g points, full would be %g", got, full)
	}
	// Census estimate under partial fulfillment is still unbiased-ish;
	// with the whole relation sampled it should be close but the plan
	// does not cover all cross pairs, so only check it is positive and
	// finite.
	est := q.Estimate()
	if est.Value <= 0 || math.IsInf(est.Value, 0) || math.IsNaN(est.Value) {
		t.Errorf("partial estimate = %v", est)
	}
}

func TestEstimatorUnbiasedOverRandomSamples(t *testing.T) {
	// Join estimate over repeated small cluster samples should center on
	// the exact count.
	e := &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}, On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	st0, _ := fixture(t, 1)
	want := float64(exactCount(t, st0, e))
	rng := rand.New(rand.NewSource(99))
	var acc stats.Accumulator
	for trial := 0; trial < 150; trial++ {
		st, _ := fixture(t, 1)
		q, _ := mustQuery(t, st, e, FullFulfillment)
		for _, f := range q.Feeds {
			smp := sampling.NewBlockSampler(f.Rel.NumBlocks(), rng)
			if err := f.LoadStage(smp.Draw(8)); err != nil {
				t.Fatal(err)
			}
		}
		if err := q.AdvanceStage(0); err != nil {
			t.Fatal(err)
		}
		acc.Add(q.Estimate().Value)
	}
	if math.Abs(acc.Mean()-want)/want > 0.1 {
		t.Errorf("mean estimate %.1f, exact %.1f (relative error > 10%%)", acc.Mean(), want)
	}
}

func TestSelectivityStatsTracked(t *testing.T) {
	st, _ := fixture(t, 1)
	e := &ra.Select{Input: &ra.Base{Name: "r"}, Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(5)}}}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	loadAll(t, q)
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	root := q.Terms[0].Root
	s := root.Stats()
	if s.CumPoints != 200 {
		t.Errorf("select CumPoints = %g, want 200", s.CumPoints)
	}
	// a < 5 matches a in {0..4}: 10 ids per a value -> 50 tuples.
	if s.CumOut != 50 {
		t.Errorf("select CumOut = %g, want 50", s.CumOut)
	}
	sel := s.CumOut / s.CumPoints
	if math.Abs(sel-0.25) > 1e-9 {
		t.Errorf("selectivity = %g, want 0.25", sel)
	}
}

func TestStepTimingsRecorded(t *testing.T) {
	st, _ := fixture(t, 1)
	e := &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}, On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	q, env := mustQuery(t, st, e, FullFulfillment)
	loadAll(t, q)
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	timings := env.TakeTimings()
	if len(timings) == 0 {
		t.Fatal("no step timings recorded")
	}
	kinds := map[StepKind]bool{}
	for _, tm := range timings {
		kinds[tm.Step] = true
		if tm.Units < 0 || tm.Actual < 0 {
			t.Errorf("bad timing %+v", tm)
		}
	}
	for _, k := range []StepKind{StepRead, StepWrite, StepSort, StepMerge, StepOutput} {
		if !kinds[k] {
			t.Errorf("missing step kind %s", k)
		}
	}
	if len(env.TakeTimings()) != 0 {
		t.Error("TakeTimings must clear the buffer")
	}
}

func TestClockChargedDuringExecution(t *testing.T) {
	st, clk := fixture(t, 1)
	e := &ra.Select{Input: &ra.Base{Name: "r"}, Pred: ra.True{}}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	loadAll(t, q)
	before := clk.Now()
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	if clk.Now() <= before {
		t.Error("executing a stage must charge the clock")
	}
}

func TestHardDeadlineAbortsStage(t *testing.T) {
	st, clk := fixture(t, 1)
	e := &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}, On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	env := NewEnv(st)
	q, err := NewQuery(e, env, StoreCatalog{st}, FullFulfillment)
	if err != nil {
		t.Fatal(err)
	}
	// Arm a deadline that will expire partway through the block reads.
	env.SetDeadline(vclock.NewDeadline(clk, 100*time.Millisecond))
	var abortErr error
	for _, f := range q.Feeds {
		blocks := make([]int, f.Rel.NumBlocks())
		for i := range blocks {
			blocks[i] = i
		}
		if abortErr = f.LoadStage(blocks); abortErr != nil {
			break
		}
	}
	if abortErr == nil {
		abortErr = q.AdvanceStage(0)
	}
	if !IsAborted(abortErr) {
		t.Errorf("expected deadline abort, got %v", abortErr)
	}
}

func TestDeadlineAbortsMidMerge(t *testing.T) {
	st, clk := fixture(t, 1)
	e := &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}, On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	env := NewEnv(st)
	q, err := NewQuery(e, env, StoreCatalog{st}, FullFulfillment)
	if err != nil {
		t.Fatal(err)
	}
	// Load everything with no deadline, then arm one that expires during
	// operator evaluation.
	for _, f := range q.Feeds {
		blocks := make([]int, f.Rel.NumBlocks())
		for i := range blocks {
			blocks[i] = i
		}
		if err := f.LoadStage(blocks); err != nil {
			t.Fatal(err)
		}
	}
	env.SetDeadline(vclock.NewDeadline(clk, time.Millisecond))
	clk.Advance(2 * time.Millisecond)
	if err := q.AdvanceStage(0); !IsAborted(err) {
		t.Errorf("expected mid-stage abort, got %v", err)
	}
}

func TestSnapshotReflectsTree(t *testing.T) {
	st, _ := fixture(t, 1)
	e := &ra.Join{
		Left:  &ra.Select{Input: &ra.Base{Name: "r"}, Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(5)}}},
		Right: &ra.Base{Name: "s"},
		On:    []ra.JoinCond{{LeftCol: "id", RightCol: "id"}},
	}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	loadAll(t, q)
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	info := Snapshot(q.Terms[0].Root)
	if info.Op != OpJoin || len(info.Children) != 2 {
		t.Fatalf("root info = %+v", info)
	}
	sel := info.Children[0]
	if sel.Op != OpSelect || sel.PredComparisons != 1 {
		t.Errorf("select info = %+v", sel)
	}
	base := sel.Children[0]
	if base.Op != OpBase || base.BaseName != "r" || base.BaseTuples != 200 {
		t.Errorf("base info = %+v", base)
	}
	if base.BlockingFactor != storage.DefaultBlockSize/16 {
		t.Errorf("blocking factor = %d", base.BlockingFactor)
	}
	if info.CumOut != q.Terms[0].Root.CumOutTuples() {
		t.Error("snapshot CumOut mismatch")
	}
	count := 0
	WalkInfo(info, func(*NodeInfo) { count++ })
	if count != 4 {
		t.Errorf("walked %d nodes, want 4", count)
	}
}

func TestQuerySampledBlocks(t *testing.T) {
	st, _ := fixture(t, 1)
	e := &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}, On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	rng := rand.New(rand.NewSource(1))
	for _, f := range q.Feeds {
		smp := sampling.NewBlockSampler(f.Rel.NumBlocks(), rng)
		if err := f.LoadStage(smp.Draw(3)); err != nil {
			t.Fatal(err)
		}
	}
	if q.SampledBlocks() != 6 {
		t.Errorf("SampledBlocks = %d, want 6", q.SampledBlocks())
	}
}

func TestOpAndStepStrings(t *testing.T) {
	ops := []OpKind{OpBase, OpSelect, OpJoin, OpIntersect, OpProject, OpKind(9)}
	for _, o := range ops {
		if o.String() == "" {
			t.Errorf("empty op name for %d", int(o))
		}
	}
	steps := []StepKind{StepRead, StepScan, StepWrite, StepSort, StepMerge, StepOutput, StepKind(9)}
	for _, s := range steps {
		if s.String() == "" {
			t.Errorf("empty step name for %d", int(s))
		}
	}
	if FullFulfillment.String() != "full" || PartialFulfillment.String() != "partial" {
		t.Error("plan names wrong")
	}
}

func TestBuildErrors(t *testing.T) {
	st, _ := fixture(t, 1)
	env := NewEnv(st)
	cat := StoreCatalog{st}
	// Missing feed.
	if _, err := Build(&ra.Base{Name: "r"}, env, cat, map[string]*Feed{}, FullFulfillment); err == nil {
		t.Error("missing feed should fail")
	}
	// Set op must be rejected (Terms handles them upstream).
	r, _ := st.Relation("r")
	feeds := map[string]*Feed{"r": NewFeed(env, r)}
	if _, err := Build(&ra.Union{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "r"}}, env, cat, feeds, FullFulfillment); err == nil {
		t.Error("union should be rejected by Build")
	}
	// Bad predicate.
	bad := &ra.Select{Input: &ra.Base{Name: "r"}, Pred: &ra.Cmp{Left: ra.Col{Name: "zz"}, Op: ra.Lt, Right: ra.Const{Value: int64(1)}}}
	if _, err := Build(bad, env, cat, feeds, FullFulfillment); err == nil {
		t.Error("unknown predicate column should fail at build time")
	}
}

func TestGoodmanPathOnProjection(t *testing.T) {
	// Project over r on column a has exactly 20 distinct values; a census
	// sample must estimate exactly 20 (Goodman is exact at q=1).
	st, _ := fixture(t, 1)
	e := &ra.Project{Input: &ra.Base{Name: "r"}, Cols: []string{"a"}}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	loadAll(t, q)
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	if !q.Terms[0].HasRootProjection() {
		t.Fatal("expected projection at term root")
	}
	est := q.Estimate()
	if math.Abs(est.Value-20) > 1e-9 {
		t.Errorf("census distinct estimate = %g, want 20", est.Value)
	}
}

func TestProjectionOccupancies(t *testing.T) {
	st, _ := fixture(t, 1)
	e := &ra.Project{Input: &ra.Base{Name: "r"}, Cols: []string{"a"}}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	loadAll(t, q)
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	proj := q.Terms[0].Root.(*projectNode)
	freq := proj.Occupancies()
	// Every a value appears exactly 10 times in r.
	if freq[10] != 20 || len(freq) != 1 {
		t.Errorf("occupancies = %v, want {10:20}", freq)
	}
	if proj.SampledInput() != 200 {
		t.Errorf("SampledInput = %d", proj.SampledInput())
	}
}

func TestSelfIntersectUsesSingleDimension(t *testing.T) {
	// intersect(select(r, a<5), select(r, a<10)) over the SAME relation:
	// the point space is one-dimensional; a census must return exactly
	// the size of the conjunction (a<5 -> 50 tuples).
	e := &ra.Intersect{Inputs: []ra.Expr{
		&ra.Select{Input: &ra.Base{Name: "r"}, Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(5)}}},
		&ra.Select{Input: &ra.Base{Name: "r"}, Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(10)}}},
	}}
	fullSampleExact(t, e, 1)
}
