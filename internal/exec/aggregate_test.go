package exec

import (
	"math"
	"math/rand"
	"testing"

	"tcq/internal/ra"
	"tcq/internal/sampling"
	"tcq/internal/stats"
	"tcq/internal/tuple"
)

func TestSetAggregateValidation(t *testing.T) {
	st, _ := fixture(t, 1)
	e := &ra.Select{Input: &ra.Base{Name: "r"}, Pred: ra.True{}}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	if err := q.SetAggregate("a"); err != nil {
		t.Errorf("numeric column rejected: %v", err)
	}
	if err := q.SetAggregate("zz"); err == nil {
		t.Error("unknown column accepted")
	}
	// Projection-rooted term: no SUM estimator.
	p := &ra.Project{Input: &ra.Base{Name: "r"}, Cols: []string{"a"}}
	qp, _ := mustQuery(t, st, p, FullFulfillment)
	if err := qp.SetAggregate("a"); err == nil {
		t.Error("sum over projection accepted")
	}
}

func TestSumCensusExact(t *testing.T) {
	st, _ := fixture(t, 1)
	e := &ra.Select{Input: &ra.Base{Name: "r"},
		Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(5)}}}
	want, err := ra.SumExact(e, "id", StoreCatalog{st})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	if err := q.SetAggregate("id"); err != nil {
		t.Fatal(err)
	}
	loadAll(t, q)
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	got := q.SumEstimate()
	if math.Abs(got.Value-want) > 1e-6 {
		t.Errorf("census sum = %g, exact = %g", got.Value, want)
	}
	if got.Variance != 0 {
		t.Errorf("census sum variance = %g", got.Variance)
	}
}

func TestSumCensusJoin(t *testing.T) {
	st, _ := fixture(t, 1)
	e := &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"},
		On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	// Join output schema disambiguates clashing columns as l.id / r.id.
	want, err := ra.SumExact(e, "l.id", StoreCatalog{st})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	if err := q.SetAggregate("l.id"); err != nil {
		t.Fatal(err)
	}
	loadAll(t, q)
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	got := q.SumEstimate()
	if math.Abs(got.Value-want) > 1e-6 {
		t.Errorf("census join sum = %g, exact = %g", got.Value, want)
	}
}

func TestSumEstimateUnbiasedOverSamples(t *testing.T) {
	e := &ra.Select{Input: &ra.Base{Name: "r"},
		Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(10)}}}
	st0, _ := fixture(t, 1)
	want, err := ra.SumExact(e, "id", StoreCatalog{st0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	var acc stats.Accumulator
	for trial := 0; trial < 120; trial++ {
		st, _ := fixture(t, 1)
		q, _ := mustQuery(t, st, e, FullFulfillment)
		if err := q.SetAggregate("id"); err != nil {
			t.Fatal(err)
		}
		for _, f := range q.Feeds {
			smp := sampling.NewBlockSampler(f.Rel.NumBlocks(), rng)
			if err := f.LoadStage(smp.Draw(8)); err != nil {
				t.Fatal(err)
			}
		}
		if err := q.AdvanceStage(0); err != nil {
			t.Fatal(err)
		}
		acc.Add(q.SumEstimate().Value)
	}
	if math.Abs(acc.Mean()-want)/want > 0.15 {
		t.Errorf("mean sum estimate %.1f, exact %.1f", acc.Mean(), want)
	}
}

func TestSumEstimateWithoutAggregateIsZero(t *testing.T) {
	st, _ := fixture(t, 1)
	e := &ra.Base{Name: "r"}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	loadAll(t, q)
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	if got := q.SumEstimate(); got.Value != 0 {
		t.Errorf("unconfigured sum = %+v", got)
	}
}

func TestGroupByCensusExact(t *testing.T) {
	st, _ := fixture(t, 1)
	e := &ra.Select{Input: &ra.Base{Name: "r"},
		Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(4)}}}
	want, err := ra.GroupCountExact(e, "a", StoreCatalog{st})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 4 {
		t.Fatalf("expected 4 groups, got %v", want)
	}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	if err := q.SetGroupBy("a"); err != nil {
		t.Fatal(err)
	}
	loadAll(t, q)
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	groups := q.GroupEstimates()
	if len(groups) != 4 {
		t.Fatalf("groups = %d", len(groups))
	}
	prev := int64(-1)
	for _, g := range groups {
		k := g.Key.(int64)
		if k <= prev {
			t.Error("groups not sorted by key")
		}
		prev = k
		if math.Abs(g.Estimate.Value-float64(want[g.Key])) > 1e-6 {
			t.Errorf("group %v: estimate %g, exact %d", g.Key, g.Estimate.Value, want[g.Key])
		}
		if g.Estimate.Variance != 0 {
			t.Errorf("census group variance = %g", g.Estimate.Variance)
		}
	}
}

func TestGroupByValidation(t *testing.T) {
	st, _ := fixture(t, 1)
	q, _ := mustQuery(t, st, &ra.Base{Name: "r"}, FullFulfillment)
	if err := q.SetGroupBy("zz"); err == nil {
		t.Error("unknown group column accepted")
	}
	p, _ := mustQuery(t, st, &ra.Project{Input: &ra.Base{Name: "r"}, Cols: []string{"a"}}, FullFulfillment)
	if err := p.SetGroupBy("a"); err == nil {
		t.Error("group-by over projection accepted")
	}
}

func TestGroupByUnionSignedCombination(t *testing.T) {
	// count per group of (r ∪ s) = r groups + s groups − (r∩s) groups,
	// evaluated on a census: must be exact.
	st, _ := fixture(t, 1)
	e := &ra.Union{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}}
	want, err := ra.GroupCountExact(e, "a", StoreCatalog{st})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	if err := q.SetGroupBy("a"); err != nil {
		t.Fatal(err)
	}
	loadAll(t, q)
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	got := q.GroupEstimates()
	byKey := map[tuple.Value]float64{}
	for _, g := range got {
		byKey[g.Key] = g.Estimate.Value
	}
	for k, w := range want {
		if math.Abs(byKey[k]-float64(w)) > 1e-6 {
			t.Errorf("group %v: got %g, want %d", k, byKey[k], w)
		}
	}
}
