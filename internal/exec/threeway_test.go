package exec

import (
	"math"
	"math/rand"
	"testing"

	"tcq/internal/ra"
	"tcq/internal/sampling"
	"tcq/internal/stats"
	"tcq/internal/storage"
	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

// threeWayFixture builds r(id,a), s(id,a), u(id,a) so that the chain
// join r ⋈_a s ⋈_a u has a known positive cardinality.
func threeWayFixture(t *testing.T) *storage.Store {
	t.Helper()
	clk := vclock.NewSim(1, 0)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
	)
	for relIdx, name := range []string{"r", "s", "u"} {
		rel, err := st.CreateRelation(name, sch)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 120; i++ {
			// Join attribute in 0..11; ids unique per relation.
			if err := rel.Append(tuple.Tuple{int64(relIdx*1000) + i, i % 12}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st
}

func threeWayJoin() ra.Expr {
	return &ra.Join{
		Left: &ra.Join{
			Left:  &ra.Base{Name: "r"},
			Right: &ra.Base{Name: "s"},
			On:    []ra.JoinCond{{LeftCol: "a", RightCol: "a"}},
		},
		Right: &ra.Base{Name: "u"},
		// The left schema disambiguates the clash as l.a / r.a.
		On: []ra.JoinCond{{LeftCol: "l.a", RightCol: "a"}},
	}
}

func TestThreeWayJoinCensusExact(t *testing.T) {
	st := threeWayFixture(t)
	e := threeWayJoin()
	want, err := ra.CountExact(e, StoreCatalog{st})
	if err != nil {
		t.Fatal(err)
	}
	// 12 values × 10 tuples each per relation: 12 · 10³ = 12000 triples.
	if want != 12000 {
		t.Fatalf("exact three-way join = %d, want 12000", want)
	}
	for _, stages := range []int{1, 3} {
		st := threeWayFixture(t)
		q, _ := mustQuery(t, st, e, FullFulfillment)
		if stages == 1 {
			loadAll(t, q)
		} else {
			loadStages(t, q, stages, rand.New(rand.NewSource(3)))
		}
		for s := 0; s < stages; s++ {
			if err := q.AdvanceStage(s); err != nil {
				t.Fatal(err)
			}
		}
		got := q.Estimate()
		if math.Abs(got.Value-float64(want)) > 1e-6 {
			t.Errorf("stages=%d: census estimate %g, exact %d", stages, got.Value, want)
		}
	}
}

func TestThreeWayJoinPointSpace(t *testing.T) {
	st := threeWayFixture(t)
	q, _ := mustQuery(t, st, threeWayJoin(), FullFulfillment)
	te := q.Terms[0]
	if got := te.TotalPoints(); got != 120*120*120 {
		t.Errorf("TotalPoints = %g, want 120³", got)
	}
	if len(te.Feeds()) != 3 {
		t.Errorf("feeds = %d, want 3", len(te.Feeds()))
	}
}

func TestThreeWayJoinEstimateUnbiased(t *testing.T) {
	e := threeWayJoin()
	rng := rand.New(rand.NewSource(5))
	var acc stats.Accumulator
	for trial := 0; trial < 60; trial++ {
		st := threeWayFixture(t)
		q, _ := mustQuery(t, st, e, FullFulfillment)
		for _, f := range q.Feeds {
			smp := sampling.NewBlockSampler(f.Rel.NumBlocks(), rng)
			if err := f.LoadStage(smp.Draw(3)); err != nil {
				t.Fatal(err)
			}
		}
		if err := q.AdvanceStage(0); err != nil {
			t.Fatal(err)
		}
		acc.Add(q.Estimate().Value)
	}
	if math.Abs(acc.Mean()-12000)/12000 > 0.15 {
		t.Errorf("three-way mean estimate %.0f, exact 12000", acc.Mean())
	}
}

func TestSelectOverJoinCensus(t *testing.T) {
	st := threeWayFixture(t)
	e := &ra.Select{
		Input: &ra.Join{
			Left:  &ra.Base{Name: "r"},
			Right: &ra.Base{Name: "s"},
			On:    []ra.JoinCond{{LeftCol: "a", RightCol: "a"}},
		},
		// Both join inputs carry (id, a), so the joined schema
		// disambiguates every column: l.id, l.a, r.id, r.a.
		Pred: &ra.Cmp{Left: ra.Col{Name: "l.a"}, Op: ra.Lt, Right: ra.Const{Value: int64(3)}},
	}
	want, err := ra.CountExact(e, StoreCatalog{st})
	if err != nil {
		t.Fatal(err)
	}
	if want != 300 { // 3 values × 100 pairs
		t.Fatalf("exact = %d, want 300", want)
	}
	q, _ := mustQuery(t, st, e, FullFulfillment)
	loadAll(t, q)
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	if got := q.Estimate(); math.Abs(got.Value-300) > 1e-6 {
		t.Errorf("census estimate %g, want 300", got.Value)
	}
}

func TestDeadlineAbortsDuringProjectPhase(t *testing.T) {
	st, clk := fixture(t, 1)
	e := &ra.Project{Input: &ra.Base{Name: "r"}, Cols: []string{"a"}}
	env := NewEnv(st)
	q, err := NewQuery(e, env, StoreCatalog{st}, FullFulfillment)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range q.Feeds {
		blocks := make([]int, f.Rel.NumBlocks())
		for i := range blocks {
			blocks[i] = i
		}
		if err := f.LoadStage(blocks); err != nil {
			t.Fatal(err)
		}
	}
	// Arm a deadline that expires during the project's write phase.
	env.SetDeadline(vclock.NewDeadline(clk, storage.SunProfile().TupleWrite*10))
	if err := q.AdvanceStage(0); !IsAborted(err) {
		t.Errorf("expected abort in project phase, got %v", err)
	}
}
