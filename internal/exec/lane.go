package exec

import (
	"sort"
	"time"

	"tcq/internal/storage"
	"tcq/internal/vclock"
)

// Deterministic parallel term evaluation.
//
// The engine's determinism contract says a seeded run must be
// byte-identical — estimates, tables and traces — no matter how many
// workers evaluate it. The obstacle is the session clock: under a
// simulated clock every Charge consumes seeded jitter randomness, so
// the *order* of charges decides the virtual timeline. Letting worker
// goroutines charge the shared clock directly would make that order a
// scheduling accident.
//
// A lane solves this with record/replay: while a term executes on a
// worker, its charges go to the lane (a recording clock), its temp-file
// counters to the lane's private counter set, and its step timings are
// kept as *spans over the charge log* rather than durations. After all
// terms of a stage finish, the lanes are replayed onto the real clock
// in fixed term order — exactly the sequence a serial run would have
// produced — and the recorded spans are resolved into the same jittered
// durations a serial run would have measured. Parallelism therefore
// changes wall-clock speed only, never the simulation.
//
// The charge log is run-length encoded: executors charge long runs of
// identical durations (per-tuple checks, batched writes), so the log is
// a few runs per step rather than one entry per tuple, and replay can
// push whole runs onto the session clock with one lock acquisition
// (vclock.ChargeRun — draw-for-draw identical to charging singly).
type lane struct {
	runs     []chargeRun  // recorded positive charges, RLE, in order
	total    int          // Σ runs[i].n — the charge-log length
	pending  []laneTiming // step timings as charge-log spans
	counters storage.Counters
}

// chargeRun is a run of n consecutive identical charges of duration d.
type chargeRun struct {
	d time.Duration
	n int
}

// laneTiming is a StepTiming whose Actual duration is still unresolved:
// it covers charges [start, end) of the lane's log.
type laneTiming struct {
	t          StepTiming
	start, end int
}

// Charge implements vclock.Clock by recording the nominal charge for
// later replay. Non-positive charges are dropped, mirroring Sim.Charge
// (which consumes no jitter randomness for them either).
func (l *lane) Charge(d time.Duration) {
	if d <= 0 {
		return
	}
	l.append(d, 1)
}

// ChargeRun implements vclock.RunCharger: n identical charges recorded
// as one run.
func (l *lane) ChargeRun(d time.Duration, n int) {
	if d <= 0 || n <= 0 {
		return
	}
	l.append(d, n)
}

func (l *lane) append(d time.Duration, n int) {
	if k := len(l.runs) - 1; k >= 0 && l.runs[k].d == d {
		l.runs[k].n += n
	} else {
		l.runs = append(l.runs, chargeRun{d: d, n: n})
	}
	l.total += n
}

// Now implements vclock.Clock; on a lane it is a position in the charge
// log, not a time. Executors only ever use Now to delimit spans
// (t0 := Now(); ...; record(..., Now()-t0)), so index arithmetic is
// exactly what resolves to real durations at replay.
func (l *lane) Now() time.Duration { return time.Duration(l.total) }

var (
	_ vclock.Clock      = (*lane)(nil)
	_ vclock.RunCharger = (*lane)(nil)
)

// replay applies the lane's charge log to the real clock, resolves the
// pending timings against the resulting (jittered) timeline, folds the
// lane's counters into the session store, and clears the lane for the
// next stage. It must be called from the engine goroutine, in term
// order. Charges are pushed run-wise, splitting runs only at span
// boundaries the pending timings reference.
func (e *Env) replayLane(root *Env) {
	l := e.lane
	if l == nil || (l.total == 0 && len(l.pending) == 0 &&
		e.Comparisons == 0 && e.DeadlinePolls == 0 && l.counters == (storage.Counters{})) {
		return
	}
	clock := root.Store.Clock()

	// Sorted span boundaries at which the replay must read the clock.
	bounds := make([]int, 0, 2*len(l.pending))
	for _, lt := range l.pending {
		bounds = append(bounds, lt.start, lt.end)
	}
	sort.Ints(bounds)
	at := make(map[int]time.Duration, len(bounds))
	pos, bi := 0, 0
	mark := func() {
		for bi < len(bounds) && bounds[bi] == pos {
			at[pos] = clock.Now()
			bi++
		}
	}
	mark()
	for _, r := range l.runs {
		rem := r.n
		for rem > 0 {
			next := pos + rem
			if bi < len(bounds) && bounds[bi] < next {
				next = bounds[bi]
			}
			vclock.ChargeRun(clock, r.d, next-pos)
			rem -= next - pos
			pos = next
			mark()
		}
	}
	for _, lt := range l.pending {
		st := lt.t
		st.Actual = at[lt.end] - at[lt.start]
		root.Timings = append(root.Timings, st)
	}
	root.Comparisons += e.Comparisons
	root.DeadlinePolls += e.DeadlinePolls
	root.Store.AddCounters(l.counters)

	e.Comparisons, e.DeadlinePolls = 0, 0
	l.runs = l.runs[:0]
	l.total = 0
	l.pending = l.pending[:0]
	l.counters = storage.Counters{}
}
