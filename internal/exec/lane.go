package exec

import (
	"time"

	"tcq/internal/storage"
	"tcq/internal/vclock"
)

// Deterministic parallel term evaluation.
//
// The engine's determinism contract says a seeded run must be
// byte-identical — estimates, tables and traces — no matter how many
// workers evaluate it. The obstacle is the session clock: under a
// simulated clock every Charge consumes seeded jitter randomness, so
// the *order* of charges decides the virtual timeline. Letting worker
// goroutines charge the shared clock directly would make that order a
// scheduling accident.
//
// A lane solves this with record/replay: while a term executes on a
// worker, its charges go to the lane (a recording clock), its temp-file
// counters to the lane's private counter set, and its step timings are
// kept as *spans over the charge log* rather than durations. After all
// terms of a stage finish, the lanes are replayed onto the real clock
// in fixed term order — exactly the sequence a serial run would have
// produced — and the recorded spans are resolved into the same jittered
// durations a serial run would have measured. Parallelism therefore
// changes wall-clock speed only, never the simulation.
type lane struct {
	charges  []time.Duration // recorded positive charges, in order
	pending  []laneTiming    // step timings as charge-log spans
	counters storage.Counters
}

// laneTiming is a StepTiming whose Actual duration is still unresolved:
// it covers charges [start, end) of the lane's log.
type laneTiming struct {
	t          StepTiming
	start, end int
}

// Charge implements vclock.Clock by recording the nominal charge for
// later replay. Non-positive charges are dropped, mirroring Sim.Charge
// (which consumes no jitter randomness for them either).
func (l *lane) Charge(d time.Duration) {
	if d <= 0 {
		return
	}
	l.charges = append(l.charges, d)
}

// Now implements vclock.Clock; on a lane it is a position in the charge
// log, not a time. Executors only ever use Now to delimit spans
// (t0 := Now(); ...; record(..., Now()-t0)), so index arithmetic is
// exactly what resolves to real durations at replay.
func (l *lane) Now() time.Duration { return time.Duration(len(l.charges)) }

var _ vclock.Clock = (*lane)(nil)

// replay applies the lane's charge log to the real clock, resolves the
// pending timings against the resulting (jittered) timeline, folds the
// lane's counters into the session store, and clears the lane for the
// next stage. It must be called from the engine goroutine, in term
// order.
func (e *Env) replayLane(root *Env) {
	l := e.lane
	if l == nil || (len(l.charges) == 0 && len(l.pending) == 0 &&
		e.Comparisons == 0 && e.DeadlinePolls == 0 && l.counters == (storage.Counters{})) {
		return
	}
	clock := root.Store.Clock()
	prefix := make([]time.Duration, len(l.charges)+1)
	prefix[0] = clock.Now()
	for i, d := range l.charges {
		clock.Charge(d)
		prefix[i+1] = clock.Now()
	}
	for _, lt := range l.pending {
		st := lt.t
		st.Actual = prefix[lt.end] - prefix[lt.start]
		root.Timings = append(root.Timings, st)
	}
	root.Comparisons += e.Comparisons
	root.DeadlinePolls += e.DeadlinePolls
	root.Store.AddCounters(l.counters)

	e.Comparisons, e.DeadlinePolls = 0, 0
	l.charges = l.charges[:0]
	l.pending = l.pending[:0]
	l.counters = storage.Counters{}
}
