package exec

import (
	"fmt"
	"testing"

	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

// buildBoundaryStore creates relations r and s with exactly n tuples
// each, either columnar (the batch hot path) or row-backed (the scalar
// reference path). s overlaps r on half its ids so joins and
// intersections produce output at every size.
func buildBoundaryStore(t *testing.T, n int, columnar bool) (*storage.Store, *vclock.Sim) {
	t.Helper()
	clk := vclock.NewSim(3, 0.01)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
	)
	rows := func(base int) []tuple.Tuple {
		ts := make([]tuple.Tuple, 0, n)
		for i := 0; i < n; i++ {
			id := int64(base + i)
			ts = append(ts, tuple.Tuple{id, id % 7})
		}
		return ts
	}
	for _, rel := range []struct {
		name string
		base int
	}{{"r", 0}, {"s", n / 2}} {
		r, err := st.CreateRelation(rel.name, sch)
		if err != nil {
			t.Fatal(err)
		}
		ts := rows(rel.base)
		if columnar {
			b := tuple.NewBatch(sch)
			for _, tp := range ts {
				if err := b.AppendRow(tp); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.AppendBatch(b); err != nil {
				t.Fatal(err)
			}
			if !r.Columnar() {
				t.Fatalf("relation %s (n=%d) not columnar", rel.name, n)
			}
		} else {
			if err := r.AppendAll(ts); err != nil {
				t.Fatal(err)
			}
			if r.Columnar() {
				t.Fatalf("relation %s (n=%d) unexpectedly columnar", rel.name, n)
			}
		}
	}
	return st, clk
}

// boundaryFingerprint runs a census evaluation of e split over the
// given per-feed stage block lists and captures everything observable
// about the simulation: the estimate, the clock position (every jitter
// draw), poll and comparison counters, and the store counters.
func boundaryFingerprint(t *testing.T, st *storage.Store, clk *vclock.Sim, e ra.Expr, workers int, split func(nb int) [][]int) string {
	t.Helper()
	env := NewEnv(st)
	q, err := NewParallelQuery(e, env, StoreCatalog{st}, FullFulfillment, workers)
	if err != nil {
		t.Fatal(err)
	}
	nStages := 0
	for _, name := range q.FeedNames() {
		f := q.Feeds[name]
		stages := split(f.Rel.NumBlocks())
		nStages = len(stages)
		for _, blocks := range stages {
			if err := f.LoadStage(blocks); err != nil {
				t.Fatal(err)
			}
		}
	}
	for s := 0; s < nStages; s++ {
		if err := q.AdvanceStage(s); err != nil {
			t.Fatal(err)
		}
	}
	est := q.Estimate()
	return fmt.Sprintf("est=%v var=%v clock=%d polls=%d comps=%d counters=%+v",
		est.Value, est.Variance, clk.Now(), env.DeadlinePolls, env.Comparisons, st.Counters())
}

// TestBatchBoundaryEquivalence pins the batch paths at the boundary
// sizes — empty relations (empty batches), a single tuple, exactly one
// block, one block plus one tuple, and several blocks with a remainder
// — by checking that columnar evaluation reproduces the row-backed
// evaluation bit-for-bit (estimate, clock, polls, comparisons, I/O
// counters) for select, project, join and intersect, serially and with
// a worker pool, including a split whose second stage is empty.
func TestBatchBoundaryEquivalence(t *testing.T) {
	probe, _ := buildBoundaryStore(t, 1, true)
	rel, err := probe.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	bf := rel.BlockingFactor()

	exprs := map[string]ra.Expr{
		"select": &ra.Select{Input: &ra.Base{Name: "r"},
			Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(4)}}},
		"project": &ra.Project{Input: &ra.Base{Name: "r"}, Cols: []string{"a"}},
		"join": &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"},
			On: []ra.JoinCond{{LeftCol: "id", RightCol: "id"}}},
		"intersect": &ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "r"}, &ra.Base{Name: "s"}}},
	}
	splits := map[string]func(nb int) [][]int{
		"one-stage": func(nb int) [][]int {
			all := make([]int, nb)
			for i := range all {
				all[i] = i
			}
			return [][]int{all}
		},
		"half-and-empty": func(nb int) [][]int {
			all := make([]int, nb)
			for i := range all {
				all[i] = i
			}
			return [][]int{all, {}} // second stage is an empty batch
		},
		"two-stage": func(nb int) [][]int {
			all := make([]int, nb)
			for i := range all {
				all[i] = i
			}
			return [][]int{all[:nb/2], all[nb/2:]}
		},
	}

	for _, n := range []int{0, 1, bf, bf + 1, 3*bf + 2} {
		for ename, e := range exprs {
			for sname, split := range splits {
				for _, workers := range []int{1, 4} {
					rowSt, rowClk := buildBoundaryStore(t, n, false)
					want := boundaryFingerprint(t, rowSt, rowClk, e, workers, split)
					colSt, colClk := buildBoundaryStore(t, n, true)
					got := boundaryFingerprint(t, colSt, colClk, e, workers, split)
					if got != want {
						t.Errorf("n=%d %s %s workers=%d:\n rows: %s\nbatch: %s",
							n, ename, sname, workers, want, got)
					}
				}
			}
		}
	}
}
