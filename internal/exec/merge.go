package exec

// Incremental evaluation of the full-fulfillment merge plan.
//
// The paper's Fig. 4.5 plan combines stage s's new runs with every
// previous stage's runs: 2s+1 independent two-run merge-joins. Executed
// literally, the host-side work per stage grows linearly in s (and
// quadratically over a query), even though the *logical* result is just
// "new left × all right so far, plus all previous left × new right".
//
// This file evaluates the same plan with two physical merge-joins per
// stage against cumulative sorted runs:
//
//	newL × (cumR ∪ newR)    and    cumL × newR
//
// where cumL/cumR are each side's samples from all previous stages kept
// merged in one sorted sequence. Per-stage runs are immutable once
// sorted; the cumulative sequence is a slice of packed (stage, index)
// references into them — pointer-free, so folding a new stage in is a
// write-barrier-free merge of int64s rather than a rewrite of tuple and
// key slices. Match emissions are bucketed by the cumulative element's
// stage and the buckets concatenated in the Fig. 4.5 pair order, so the
// output slice is identical — element for element — to the per-pair
// plan's output. Comparisons compare cached normalized byte keys
// (internal/tuple) instead of re-walking []Value columns.
//
// The simulated cost model is charged exactly as the per-pair plan
// charges it: per logical pair (in Fig. 4.5 order) the executor charges
// the number of comparisons the per-pair merge-join would have
// performed, computed in O(distinct keys) from per-run group summaries,
// with the same deadline-poll points. Merge step units remain
// Σ(len(l)+len(r)) over logical pairs (eq. 4.4). Only host CPU time and
// allocations change.
//
// Runs whose key columns contain Float attributes fall back to the
// legacy per-pair path: CompareValues orders NaN equal to everything,
// which admits no total byte order (and makes group summaries
// ill-defined), so the cumulative-run transformation is not sound
// there.

import (
	"bytes"
	"encoding/binary"

	"tcq/internal/sortx"
	"tcq/internal/tuple"
)

// mergePollInterval is the emit/walk granularity of hard-deadline polls
// inside merge loops. Polls read the clock without charging it, so the
// interval trades interrupt latency against host overhead only.
const mergePollInterval = 1024

// sortedRun is one stage's sorted new sample; keys[i] is the normalized
// key of ts[i] (nil on the legacy path) and pres[i] its abbreviation.
type sortedRun struct {
	ts   []tuple.Tuple
	keys [][]byte
	pres []uint64
}

// keyPrefix abbreviates a normalized key to its first eight bytes as a
// big-endian integer, zero-padded. Zero padding is order-preserving
// against bytes.Compare (no key byte sorts below 0x00), so unequal
// prefixes decide the comparison and equal prefixes fall back to the
// full keys.
func keyPrefix(k []byte) uint64 {
	var b [8]byte
	copy(b[:], k)
	return binary.BigEndian.Uint64(b[:])
}

// makePres builds the abbreviation array for a key array.
func makePres(keys [][]byte) []uint64 {
	if len(keys) == 0 {
		return nil
	}
	pres := make([]uint64, len(keys))
	for i, k := range keys {
		pres[i] = keyPrefix(k)
	}
	return pres
}

// cmpKeys compares two normalized keys through their abbreviations.
func cmpKeys(pa uint64, ka []byte, pb uint64, kb []byte) int {
	if pa != pb {
		if pa < pb {
			return -1
		}
		return 1
	}
	return bytes.Compare(ka, kb)
}

// eqKeys reports key equality through the abbreviations.
func eqKeys(pa uint64, ka []byte, pb uint64, kb []byte) bool {
	return pa == pb && bytes.Equal(ka, kb)
}

// keyGroup summarises one equal-key group of a sorted run.
type keyGroup struct {
	key []byte
	pre uint64
	cnt int
}

// groupsOf builds the group summary of a key-sorted run. The summary is
// retained for the query's lifetime, so it is sized exactly (count
// pass, then fill) rather than grown by append.
func groupsOf(keys [][]byte, pres []uint64) []keyGroup {
	if len(keys) == 0 {
		return nil
	}
	n := 1
	for i := 1; i < len(keys); i++ {
		if !eqKeys(pres[i], keys[i], pres[i-1], keys[i-1]) {
			n++
		}
	}
	gs := make([]keyGroup, 0, n)
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && eqKeys(pres[j], keys[j], pres[i], keys[i]) {
			j++
		}
		gs = append(gs, keyGroup{key: keys[i], pre: pres[i], cnt: j - i})
		i = j
	}
	return gs
}

// pairComps returns the number of comparisons mergeJoin performs on two
// key-sorted runs with the given group summaries. The count mirrors the
// element-level walk exactly: a group that sorts below the other side's
// current key costs one comparison per element (each element advances
// through the main loop singly); an equal-key pair of groups costs one
// main-loop comparison plus cnt−1 successful extent comparisons per
// side (the failing boundary comparison of the extent scan is executed
// but never counted); the loop stops when either run is exhausted,
// leaving the tail uncompared.
func pairComps(gl, gr []keyGroup) int64 {
	var comps int64
	i, j := 0, 0
	for i < len(gl) && j < len(gr) {
		switch c := cmpKeys(gl[i].pre, gl[i].key, gr[j].pre, gr[j].key); {
		case c < 0:
			comps += int64(gl[i].cnt)
			i++
		case c > 0:
			comps += int64(gr[j].cnt)
			j++
		default:
			comps += 1 + int64(gl[i].cnt-1) + int64(gr[j].cnt-1)
			i++
			j++
		}
	}
	return comps
}

// buildNormKeys encodes the normalized key of every tuple on the given
// columns, packing all keys into one arena allocation. The keys are
// freshly allocated and may be retained indefinitely (the merge sides
// keep their runs' keys for the query lifetime).
func buildNormKeys(ts []tuple.Tuple, s *tuple.Schema, cols []int) [][]byte {
	if len(ts) == 0 {
		return nil
	}
	_, keys := buildNormKeysInto(nil, nil, ts, s, cols)
	return keys
}

// buildNormKeysInto is buildNormKeys over caller-owned scratch: the
// arena and the key-slice header are reused when their capacity
// suffices, so a caller that rebuilds keys every stage (the projection
// dedup) amortizes to zero allocations instead of one arena pair per
// stage. The returned keys alias the returned arena and are valid only
// until the next call with the same scratch — callers that retain keys
// (the merge sides' sorted runs) must use buildNormKeys instead.
func buildNormKeysInto(arena []byte, keys [][]byte, ts []tuple.Tuple, s *tuple.Schema, cols []int) ([]byte, [][]byte) {
	arena, keys = normKeyScratch(arena, keys, len(ts), tuple.NormKeySizeHint(s, cols))
	for i, t := range ts {
		start := len(arena)
		arena = tuple.AppendNormKey(arena, t, cols)
		keys[i] = arena[start:len(arena):len(arena)]
	}
	return arena, keys
}

// batchNormKeys is buildNormKeys over a columnar stage sample: same
// arena layout, byte-identical keys, no tuple materialization or
// interface-value walking. Like buildNormKeys, the keys are freshly
// allocated and safe to retain.
func batchNormKeys(b *tuple.Batch, cols []int) [][]byte {
	if b.Len() == 0 {
		return nil
	}
	_, keys := batchNormKeysInto(nil, nil, b, cols)
	return keys
}

// batchNormKeysInto is buildNormKeysInto over a columnar stage sample:
// scratch reuse with the same aliasing contract.
func batchNormKeysInto(arena []byte, keys [][]byte, b *tuple.Batch, cols []int) ([]byte, [][]byte) {
	n := b.Len()
	arena, keys = normKeyScratch(arena, keys, n, tuple.NormKeySizeHint(b.Schema(), cols))
	for i := 0; i < n; i++ {
		start := len(arena)
		arena = b.AppendNormKey(arena, i, cols)
		keys[i] = arena[start:len(arena):len(arena)]
	}
	return arena, keys
}

// normKeyScratch resets the key-build scratch for n keys of the given
// size hint, reallocating only when capacity is short.
func normKeyScratch(arena []byte, keys [][]byte, n, hint int) ([]byte, [][]byte) {
	if need := n * hint; cap(arena) < need {
		arena = make([]byte, 0, need)
	}
	if cap(keys) < n {
		keys = make([][]byte, n)
	}
	return arena[:0], keys[:n]
}

// cumRef packs the position of one cumulative-run element: the stage
// whose run it belongs to and its index within that run.
type cumRef int64

func makeRef(stage, idx int) cumRef { return cumRef(int64(stage)<<32 | int64(idx)) }
func (r cumRef) stage() int         { return int(int64(r) >> 32) }
func (r cumRef) idx() int           { return int(int32(int64(r))) }

// mergeSide is one side's incremental state: the immutable per-stage
// sorted runs with their group summaries, and the cumulative key order
// over all of them as a pointer-free reference sequence. Within an
// equal-key range of cum, elements are ordered by stage, then by
// position within their stage's run (the order a stage-by-stage stable
// merge produces).
type mergeSide struct {
	runs      []sortedRun
	runGroups [][]keyGroup
	cum       []cumRef
	spare     []cumRef // double-buffer target for the next merge
}

func (s *mergeSide) key(r cumRef) []byte      { return s.runs[r.stage()].keys[r.idx()] }
func (s *mergeSide) pre(r cumRef) uint64      { return s.runs[r.stage()].pres[r.idx()] }
func (s *mergeSide) tup(r cumRef) tuple.Tuple { return s.runs[r.stage()].ts[r.idx()] }

// addRun appends a stage's sorted run and folds it into the cumulative
// order, old elements winning key ties (stage-stable).
func (s *mergeSide) addRun(r sortedRun) {
	stage := len(s.runs)
	s.runs = append(s.runs, r)
	s.runGroups = append(s.runGroups, groupsOf(r.keys, r.pres))
	if len(r.ts) == 0 {
		return
	}
	need := len(s.cum) + len(r.ts)
	out := s.spare[:0]
	if cap(out) < need {
		// Overallocate so the buffer survives several generations of
		// the double-buffer swap instead of reallocating every stage.
		out = make([]cumRef, 0, need+need/2)
	}
	i, j := 0, 0
	for i < len(s.cum) && j < len(r.ts) {
		c := s.cum[i]
		if cmpKeys(s.pre(c), s.key(c), r.pres[j], r.keys[j]) <= 0 {
			out = append(out, c)
			i++
		} else {
			out = append(out, makeRef(stage, j))
			j++
		}
	}
	out = append(out, s.cum[i:]...)
	for ; j < len(r.ts); j++ {
		out = append(out, makeRef(stage, j))
	}
	s.spare = s.cum
	s.cum = out
}

// resetBuckets returns buf resized to n empty buckets, reusing backing
// arrays from previous stages.
func resetBuckets(buf [][]tuple.Tuple, n int) [][]tuple.Tuple {
	for i := range buf {
		buf[i] = buf[i][:0]
	}
	for len(buf) < n {
		buf = append(buf, nil)
	}
	return buf[:n]
}

// countPoll returns a poll function that only counts: the shape bucket
// joins use off the engine goroutine, where an unarmed deadline can
// never expire (polls read no clock) but the poll totals must still
// land in the trace exactly as the serial walk would have counted them.
func countPoll(c *int64) func() error {
	return func() error {
		*c++
		return nil
	}
}

// bucketJoin merge-joins a new run against a side's cumulative run,
// appending emit(new, cum-element) — or emit(cum-element, new) when
// newIsLeft is false — to buckets[stage of the cum element]. Because an
// equal-key range of the cumulative run is ordered stage-major with
// within-run order preserved, bucket t receives exactly the output the
// per-pair plan's merge-join of (new × run_t) would emit, in the same
// order: keys ascending, left-major within a key.
//
// emit and poll are parameters so the two bucket joins of a stage can
// run on separate goroutines: each gets its own arena-backed emitter
// and a local poll counter (see advanceCumulative). The walk itself
// reads only immutable run/cum state.
func (n *mergeNode) bucketJoin(nw sortedRun, side *mergeSide, newIsLeft bool, buckets [][]tuple.Tuple,
	emit func(l, r tuple.Tuple) tuple.Tuple, poll func() error) error {
	cum := side.cum
	i, j := 0, 0
	ops := 0
	for i < len(nw.ts) && j < len(cum) {
		if ops++; ops%mergePollInterval == 0 {
			if err := poll(); err != nil {
				return err
			}
		}
		c := cmpKeys(nw.pres[i], nw.keys[i], side.pre(cum[j]), side.key(cum[j]))
		if c < 0 {
			i++
			continue
		}
		if c > 0 {
			j++
			continue
		}
		i2 := i + 1
		for i2 < len(nw.ts) && eqKeys(nw.pres[i2], nw.keys[i2], nw.pres[i], nw.keys[i]) {
			i2++
		}
		j2 := j + 1
		for j2 < len(cum) && eqKeys(side.pre(cum[j2]), side.key(cum[j2]), side.pre(cum[j]), side.key(cum[j])) {
			j2++
		}
		if newIsLeft {
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					if ops++; ops%mergePollInterval == 0 {
						if err := poll(); err != nil {
							return err
						}
					}
					tg := cum[b].stage()
					buckets[tg] = append(buckets[tg], emit(nw.ts[a], side.tup(cum[b])))
				}
			}
		} else {
			for b := j; b < j2; b++ {
				tg := cum[b].stage()
				ct := side.tup(cum[b])
				for a := i; a < i2; a++ {
					if ops++; ops%mergePollInterval == 0 {
						if err := poll(); err != nil {
							return err
						}
					}
					buckets[tg] = append(buckets[tg], emit(ct, nw.ts[a]))
				}
			}
		}
		i, j = i2, j2
	}
	return nil
}

// chargePair charges the simulated cost of one logical Fig. 4.5 pair
// exactly as the per-pair plan does: a merge-join of two non-empty runs
// polls the deadline on its first iteration before any comparison (and,
// with no clock charges inside the walk, can only abort there), then
// the comparison count is charged in deadline-polled chunks.
func (n *mergeNode) chargePair(lLen, rLen int, comps int64) error {
	if lLen > 0 && rLen > 0 {
		if err := n.env.checkDeadline(); err != nil {
			return err
		}
	}
	return n.env.chargeChunked(comps, n.env.Store.Costs().TupleCompare)
}

// advanceCumulative runs step 3 of the full-fulfillment plan over the
// cumulative runs: two physical merge-joins, per-pair charges, and the
// Fig. 4.5-ordered output assembly. Returns the stage output and the
// merge step units.
func (n *mergeNode) advanceCumulative(lRun, rRun sortedRun) ([]tuple.Tuple, float64, error) {
	s := n.stages - 1 // 0-based index of this stage

	// Physical work: newL × (cumR ∪ newR), then cumL_old × newR. The two
	// joins read disjoint mutable state (buckets, emit arenas) over
	// immutable runs, and under an unarmed deadline their polls cannot
	// fail and read no clock — so they may run on two goroutines, with
	// each join's polls counted locally and folded back in join order.
	// Under an armed deadline the serial walk is kept: an abort's
	// position depends on the global poll interleaving.
	n.rside.addRun(rRun)
	n.bucketsA = resetBuckets(n.bucketsA, s+1)
	n.bucketsB = resetBuckets(n.bucketsB, s)
	if n.env.armedDeadline().Armed() {
		if err := n.bucketJoin(lRun, &n.rside, true, n.bucketsA, n.emitA, n.env.checkDeadline); err != nil {
			return nil, 0, err
		}
		if err := n.bucketJoin(rRun, &n.lside, false, n.bucketsB, n.emitB, n.env.checkDeadline); err != nil {
			return nil, 0, err
		}
	} else {
		var pollsA, pollsB int64
		var errA, errB error
		sizeA := len(lRun.ts) + len(n.rside.cum)
		sizeB := len(rRun.ts) + len(n.lside.cum)
		n.env.runPar(min(sizeA, sizeB), func() {
			errA = n.bucketJoin(lRun, &n.rside, true, n.bucketsA, n.emitA, countPoll(&pollsA))
		}, func() {
			errB = n.bucketJoin(rRun, &n.lside, false, n.bucketsB, n.emitB, countPoll(&pollsB))
		})
		n.env.DeadlinePolls += pollsA + pollsB
		if errA != nil {
			return nil, 0, errA
		}
		if errB != nil {
			return nil, 0, errB
		}
	}
	n.lside.addRun(lRun)

	// Simulated charges, in the per-pair plan's order.
	lg := groupsOf(lRun.keys, lRun.pres)
	rg := n.rside.runGroups[s]
	var mergeUnits float64
	for i := 0; i <= s; i++ {
		rLen := len(n.rside.runs[i].ts)
		if err := n.chargePair(len(lRun.ts), rLen, pairComps(lg, n.rside.runGroups[i])); err != nil {
			return nil, 0, err
		}
		mergeUnits += float64(len(lRun.ts) + rLen)
	}
	for i := 0; i < s; i++ {
		lLen := len(n.lside.runs[i].ts)
		if err := n.chargePair(lLen, len(rRun.ts), pairComps(n.lside.runGroups[i], rg)); err != nil {
			return nil, 0, err
		}
		mergeUnits += float64(lLen + len(rRun.ts))
	}

	// Assemble the output in pair order: A_0..A_s (newL × run_i of the
	// right side, the new right run last), then B_0..B_{s-1}.
	total := 0
	for _, b := range n.bucketsA {
		total += len(b)
	}
	for _, b := range n.bucketsB {
		total += len(b)
	}
	out := make([]tuple.Tuple, 0, total)
	for _, b := range n.bucketsA {
		out = append(out, b...)
	}
	for _, b := range n.bucketsB {
		out = append(out, b...)
	}
	return out, mergeUnits, nil
}

// keyedMergeJoin is the cached-key twin of mergeJoin, used by the
// partial-fulfillment plan's single same-stage pair. Walk, comparison
// accounting, and deadline polling match mergeJoin exactly.
func (n *mergeNode) keyedMergeJoin(l, r sortedRun) ([]tuple.Tuple, int64, error) {
	var out []tuple.Tuple
	var comps int64
	i, j := 0, 0
	for i < len(l.ts) && j < len(r.ts) {
		if (i+j)%16 == 0 {
			if err := n.env.checkDeadline(); err != nil {
				return nil, comps, err
			}
		}
		comps++
		c := cmpKeys(l.pres[i], l.keys[i], r.pres[j], r.keys[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			i2 := i + 1
			for i2 < len(l.ts) && eqKeys(l.pres[i2], l.keys[i2], l.pres[i], l.keys[i]) {
				comps++
				i2++
			}
			j2 := j + 1
			for j2 < len(r.ts) && eqKeys(r.pres[j2], r.keys[j2], r.pres[j], r.keys[j]) {
				comps++
				j2++
			}
			emitted := 0
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					if emitted%mergePollInterval == 0 {
						if err := n.env.checkDeadline(); err != nil {
							return nil, comps, err
						}
					}
					emitted++
					out = append(out, n.emit(l.ts[a], r.ts[b]))
				}
			}
			i, j = i2, j2
		}
	}
	return out, comps, nil
}

// advanceLegacy runs step 3 as the literal per-pair plan over retained
// physical runs. It is both the Float-key fallback (no sound normalized
// byte order exists under NaN semantics) and the reference
// implementation the equivalence tests compare against.
func (n *mergeNode) advanceLegacy(lSorted, rSorted []tuple.Tuple) ([]tuple.Tuple, float64, error) {
	n.lruns = append(n.lruns, lSorted)
	n.rruns = append(n.rruns, rSorted)

	var out []tuple.Tuple
	var mergeUnits float64
	mergePair := func(l, r []tuple.Tuple) error {
		matched, comps, err := n.mergeJoin(l, r)
		if err != nil {
			return err
		}
		if err := n.env.chargeChunked(comps, n.env.Store.Costs().TupleCompare); err != nil {
			return err
		}
		mergeUnits += float64(len(l) + len(r))
		out = append(out, matched...)
		return nil
	}
	s := len(n.lruns) - 1
	if n.plan == FullFulfillment {
		// New-left × every right run, then old-left runs × new-right.
		for i := 0; i <= s; i++ {
			if err := mergePair(n.lruns[s], n.rruns[i]); err != nil {
				return nil, 0, err
			}
		}
		for i := 0; i < s; i++ {
			if err := mergePair(n.lruns[i], n.rruns[s]); err != nil {
				return nil, 0, err
			}
		}
	} else {
		if err := mergePair(n.lruns[s], n.rruns[s]); err != nil {
			return nil, 0, err
		}
	}
	return out, mergeUnits, nil
}

// mergeJoin merges two key-sorted runs, emitting n.emit(l, r) for each
// key-equal pair (group-wise cross product for duplicate keys). It
// returns the matches and the number of comparisons performed.
func (n *mergeNode) mergeJoin(l, r []tuple.Tuple) ([]tuple.Tuple, int64, error) {
	var out []tuple.Tuple
	var comps int64
	i, j := 0, 0
	for i < len(l) && j < len(r) {
		if (i+j)%16 == 0 {
			if err := n.env.checkDeadline(); err != nil {
				return nil, comps, err
			}
		}
		comps++
		c := n.keyCmpLR(l[i], r[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find the extent of the equal-key groups on both sides.
			i2 := i + 1
			for i2 < len(l) && tuple.Compare(l[i2], l[i], n.lcols, n.lcols) == 0 {
				comps++
				i2++
			}
			j2 := j + 1
			for j2 < len(r) && tuple.Compare(r[j2], r[j], n.rcols, n.rcols) == 0 {
				comps++
				j2++
			}
			// Emit the group cross product, polling the deadline at
			// block granularity: a skewed key can make this loop the
			// longest uninterruptible stretch of a stage.
			emitted := 0
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					if emitted%mergePollInterval == 0 {
						if err := n.env.checkDeadline(); err != nil {
							return nil, comps, err
						}
					}
					emitted++
					out = append(out, n.emit(l[a], r[b]))
				}
			}
			i, j = i2, j2
		}
	}
	return out, comps, nil
}

// sortNewRuns sorts both sides' new samples (step 2), caching normalized
// keys on the fast path, and returns the runs plus the comparison count
// to charge. The two sides are independent and charge-free, so they may
// run on two goroutines (runPar) when a sub-worker slot is free: the
// comparison counts are deterministic functions of the inputs and are
// charged by the caller afterwards, so scheduling cannot perturb the
// simulation. Keys are built from the columnar stage samples lb/rb when
// available (byte-identical to the tuple path).
func (n *mergeNode) sortNewRuns(newL, newR []tuple.Tuple, lb, rb *tuple.Batch) (lRun, rRun sortedRun, comps int64) {
	if n.keyed {
		var lres, rres sortx.KeyedResult
		n.env.runPar(min(len(newL), len(newR)), func() {
			lKeys := sideNormKeys(newL, lb, n.left.Schema(), n.lcols)
			lres = sortx.SortKeyed(newL, lKeys, 0)
		}, func() {
			rKeys := sideNormKeys(newR, rb, n.right.Schema(), n.rcols)
			rres = sortx.SortKeyed(newR, rKeys, 0)
		})
		return sortedRun{lres.Sorted, lres.Keys, makePres(lres.Keys)},
			sortedRun{rres.Sorted, rres.Keys, makePres(rres.Keys)},
			lres.Comparisons + rres.Comparisons
	}
	var lres, rres sortx.Result
	n.env.runPar(min(len(newL), len(newR)), func() {
		lres = sortx.Sort(newL, func(a, b tuple.Tuple) int {
			return tuple.Compare(a, b, n.lcols, n.lcols)
		}, 0)
	}, func() {
		rres = sortx.Sort(newR, func(a, b tuple.Tuple) int {
			return tuple.Compare(a, b, n.rcols, n.rcols)
		}, 0)
	})
	return sortedRun{ts: lres.Sorted}, sortedRun{ts: rres.Sorted},
		lres.Comparisons + rres.Comparisons
}

// sideNormKeys builds one side's normalized keys, preferring the
// columnar stage sample when the side is a columnar base stage. The
// keys end up retained in the side's sortedRun for the rest of the
// query, so this deliberately uses the allocating builders — pooling
// here would let a later stage overwrite an earlier run's keys.
func sideNormKeys(ts []tuple.Tuple, b *tuple.Batch, s *tuple.Schema, cols []int) [][]byte {
	if b != nil {
		return batchNormKeys(b, cols)
	}
	return buildNormKeys(ts, s, cols)
}
