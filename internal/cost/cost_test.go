package cost

import (
	"math"
	"testing"
	"time"

	"tcq/internal/exec"
	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

func fixtureStore(t *testing.T) (*storage.Store, *vclock.Sim) {
	t.Helper()
	clk := vclock.NewSim(1, 0) // no jitter: predictions should be exact-ish
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
	)
	r, _ := st.CreateRelation("r", sch)
	s, _ := st.CreateRelation("s", sch)
	// 640 tuples of 16 bytes = exactly 10 blocks of 64 tuples, so the
	// fractions used below map to whole blocks and predictions are
	// comparable to actual stage costs without rounding slack.
	for i := int64(0); i < 640; i++ {
		r.Append(tuple.Tuple{i, i % 40})
		s.Append(tuple.Tuple{i + 100, (i + 100) % 40})
	}
	return st, clk
}

func runStage(t *testing.T, st *storage.Store, e ra.Expr, frac float64) (*exec.Query, *exec.Env, time.Duration) {
	t.Helper()
	env := exec.NewEnv(st)
	q, err := exec.NewQuery(e, env, exec.StoreCatalog{Store: st}, exec.FullFulfillment)
	if err != nil {
		t.Fatal(err)
	}
	clk := st.Clock()
	t0 := clk.Now()
	for _, f := range q.Feeds {
		n := int(math.Round(frac * float64(f.Rel.NumBlocks())))
		blocks := make([]int, n)
		for i := range blocks {
			blocks[i] = i
		}
		if err := f.LoadStage(blocks); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.AdvanceStage(0); err != nil {
		t.Fatal(err)
	}
	return q, env, clk.Now() - t0
}

// trueSel returns a SelPlusFunc that uses the operator's realised
// selectivity (from the advanced tree), i.e. a clairvoyant planner.
func trueSelFunc(roots []*exec.NodeInfo) SelPlusFunc {
	sels := map[int]float64{}
	for _, r := range roots {
		exec.WalkInfo(r, func(n *exec.NodeInfo) {
			if n.CumPoints > 0 {
				sels[n.ID] = float64(n.CumOut) / n.CumPoints
			}
		})
	}
	return func(n *exec.NodeInfo, _ float64) float64 {
		if s, ok := sels[n.ID]; ok {
			return s
		}
		return 1
	}
}

// TestPredictionMatchesActualAfterOneStage is the calibration property:
// starting from the static coefficient table and adapting on stage 1's
// observed step timings, QCOST must predict stage 2's actual duration
// within 15%. (A purely static table cannot be exact for sort/merge
// steps — their comparison counts are data-dependent — which is exactly
// why the paper adapts coefficients at run time.)
func TestPredictionMatchesActualAfterOneStage(t *testing.T) {
	exprs := map[string]ra.Expr{
		"select": &ra.Select{Input: &ra.Base{Name: "r"},
			Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(10)}}},
		"join": &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"},
			On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}},
		"intersect": &ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "r"}, &ra.Base{Name: "s"}}},
		"project":   &ra.Project{Input: &ra.Base{Name: "r"}, Cols: []string{"a"}},
	}
	for name, e := range exprs {
		st, _ := fixtureStore(t)
		// Stage 1 runs first so the snapshot has realised selectivities,
		// then we predict stage 2 of the same size and run it.
		q, env, _ := runStage(t, st, e, 0.3)

		var roots []*exec.NodeInfo
		for _, te := range q.Terms {
			roots = append(roots, exec.Snapshot(te.Root))
		}
		model := NewModel(TrueCoefficients(st.Costs(), 64), true)
		model.Observe(env.TakeTimings())
		pred := model.PredictStage(roots, 0.3, trueSelFunc(roots))

		// Run stage 2 with the next 30% of blocks.
		clk := st.Clock()
		t0 := clk.Now()
		for _, f := range q.Feeds {
			n := int(math.Round(0.3 * float64(f.Rel.NumBlocks())))
			blocks := make([]int, n)
			for i := range blocks {
				blocks[i] = n + i
			}
			if err := f.LoadStage(blocks); err != nil {
				t.Fatal(err)
			}
		}
		if err := q.AdvanceStage(1); err != nil {
			t.Fatal(err)
		}
		actual := clk.Now() - t0
		ratio := pred.Duration.Seconds() / actual.Seconds()
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: predicted %v, actual %v (ratio %.3f)", name, pred.Duration, actual, ratio)
		}
	}
}

func TestAdaptiveFitConvergesFromWrongDefaults(t *testing.T) {
	st, _ := fixtureStore(t)
	e := &ra.Select{Input: &ra.Base{Name: "r"},
		Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(10)}}}

	// Defaults 3x off true.
	defaults := TrueCoefficients(st.Costs(), 64).Scale(3)
	model := NewModel(defaults, true)

	q, env, actual1 := runStage(t, st, e, 0.3)
	var roots []*exec.NodeInfo
	for _, te := range q.Terms {
		roots = append(roots, exec.Snapshot(te.Root))
	}
	sel := trueSelFunc(roots)

	before := model.PredictStage(roots, 0.3, sel).Duration
	model.Observe(env.TakeTimings())
	after := model.PredictStage(roots, 0.3, sel).Duration

	errBefore := math.Abs(before.Seconds() - actual1.Seconds())
	errAfter := math.Abs(after.Seconds() - actual1.Seconds())
	if errAfter >= errBefore {
		t.Errorf("adaptation did not improve: before err %.3fs, after %.3fs", errBefore, errAfter)
	}
	if ratio := after.Seconds() / actual1.Seconds(); ratio < 0.85 || ratio > 1.15 {
		t.Errorf("post-adaptation ratio %.3f", ratio)
	}
}

func TestNonAdaptiveModelIgnoresObservations(t *testing.T) {
	st, _ := fixtureStore(t)
	e := &ra.Select{Input: &ra.Base{Name: "r"}, Pred: ra.True{}}
	defaults := TrueCoefficients(st.Costs(), 64).Scale(2)
	model := NewModel(defaults, false)
	if model.Adaptive() {
		t.Fatal("model should be non-adaptive")
	}
	q, env, _ := runStage(t, st, e, 0.2)
	var roots []*exec.NodeInfo
	for _, te := range q.Terms {
		roots = append(roots, exec.Snapshot(te.Root))
	}
	sel := trueSelFunc(roots)
	before := model.PredictStage(roots, 0.2, sel).Duration
	model.Observe(env.TakeTimings())
	after := model.PredictStage(roots, 0.2, sel).Duration
	if before != after {
		t.Errorf("fixed-form model changed its prediction: %v -> %v", before, after)
	}
}

func TestPredictionMonotoneInFraction(t *testing.T) {
	st, _ := fixtureStore(t)
	e := &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"},
		On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	q, env, _ := runStage(t, st, e, 0.1)
	env.TakeTimings()
	var roots []*exec.NodeInfo
	for _, te := range q.Terms {
		roots = append(roots, exec.Snapshot(te.Root))
	}
	model := NewModel(TrueCoefficients(st.Costs(), 64), true)
	sel := trueSelFunc(roots)
	prev := time.Duration(0)
	for _, f := range []float64{0.01, 0.05, 0.1, 0.3, 0.6, 1.0} {
		d := model.PredictStage(roots, f, sel).Duration
		if d <= prev {
			t.Fatalf("prediction not monotone at f=%g: %v <= %v", f, d, prev)
		}
		prev = d
	}
}

func TestPredictionSharesBaseReads(t *testing.T) {
	// A self-intersect term reads its relation once; prediction must not
	// double-charge the block reads.
	st, _ := fixtureStore(t)
	e := &ra.Intersect{Inputs: []ra.Expr{
		&ra.Select{Input: &ra.Base{Name: "r"}, Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(20)}}},
		&ra.Select{Input: &ra.Base{Name: "r"}, Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Ge, Right: ra.Const{Value: int64(5)}}},
	}}
	q, env, actual := runStage(t, st, e, 0.5)
	env.TakeTimings()
	_ = actual
	var roots []*exec.NodeInfo
	for _, te := range q.Terms {
		roots = append(roots, exec.Snapshot(te.Root))
	}
	model := NewModel(TrueCoefficients(st.Costs(), 64), true)
	pred := model.PredictStage(roots, 0.5, trueSelFunc(roots))
	// Prediction charges the shared relation's reads once. If it double-
	// charged, the ratio check below would fail high.
	readOnce := model.Coef(roots[0].ID, exec.OpBase, exec.StepRead) * 0.5 * float64(10)
	if pred.Duration.Seconds() < readOnce {
		t.Fatalf("prediction %.3fs below single read cost %.3fs", pred.Duration.Seconds(), readOnce)
	}
	ratio := pred.Duration.Seconds() / actual.Seconds()
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("self-intersect prediction ratio %.3f (pred %v, actual %v)", ratio, pred.Duration, actual)
	}
}

func TestCoefficientsHelpers(t *testing.T) {
	c := TrueCoefficients(storage.SunProfile(), 5)
	if c.Get(exec.OpBase, exec.StepRead) != storage.SunProfile().BlockRead.Seconds() {
		t.Error("base read coefficient wrong")
	}
	if c.Get(exec.OpKind(42), exec.StepRead) != 0 {
		t.Error("missing op should give 0")
	}
	scaled := c.Scale(2)
	if scaled.Get(exec.OpBase, exec.StepRead) != 2*c.Get(exec.OpBase, exec.StepRead) {
		t.Error("Scale failed")
	}
	if c.Get(exec.OpBase, exec.StepRead) == scaled.Get(exec.OpBase, exec.StepRead) {
		t.Error("Scale must not mutate the original")
	}
	d := DefaultCoefficients(storage.SunProfile(), 5)
	if d.Get(exec.OpSelect, exec.StepScan) <= c.Get(exec.OpSelect, exec.StepScan) {
		t.Error("designer defaults should be conservative (larger)")
	}
	// Degenerate blocking factor.
	z := TrueCoefficients(storage.SunProfile(), 0)
	if z.Get(exec.OpJoin, exec.StepWrite) <= 0 {
		t.Error("blocking factor floor failed")
	}
}

func TestModelCoefFallsBackToDefaults(t *testing.T) {
	defaults := TrueCoefficients(storage.SunProfile(), 5)
	m := NewModel(defaults, true)
	if m.Coef(99, exec.OpJoin, exec.StepMerge) != defaults.Get(exec.OpJoin, exec.StepMerge) {
		t.Error("unobserved coefficient should fall back to default")
	}
	m.Observe([]exec.StepTiming{
		{NodeID: 99, Op: exec.OpJoin, Step: exec.StepMerge, Units: 100, Actual: time.Second},
		{NodeID: 99, Op: exec.OpJoin, Step: exec.StepMerge, Units: 100, Actual: 3 * time.Second},
		{NodeID: 99, Op: exec.OpJoin, Step: exec.StepMerge, Units: 0, Actual: time.Hour}, // ignored
	})
	want := 4.0 / 200.0
	if got := m.Coef(99, exec.OpJoin, exec.StepMerge); math.Abs(got-want) > 1e-12 {
		t.Errorf("fitted coef = %g, want %g", got, want)
	}
}

func TestPredictStageEmptyRoots(t *testing.T) {
	m := NewModel(TrueCoefficients(storage.SunProfile(), 5), true)
	p := m.PredictStage(nil, 0.5, func(*exec.NodeInfo, float64) float64 { return 1 })
	if p.Duration != 0 {
		t.Errorf("empty prediction = %v", p.Duration)
	}
}

func TestPredictionSRSReadUnits(t *testing.T) {
	// Under SRS the base read units are tuples, not blocks: prediction
	// for the same fraction must be much larger.
	mkInfo := func(srs bool) *exec.NodeInfo {
		return &exec.NodeInfo{
			ID: 1, Op: exec.OpBase, BaseName: "r",
			BaseTuples: 640, BaseBlocks: 10, BlockingFactor: 64, SRS: srs,
		}
	}
	m := NewModel(TrueCoefficients(storage.SunProfile(), 64), true)
	sel := func(*exec.NodeInfo, float64) float64 { return 1 }
	cluster := m.PredictStage([]*exec.NodeInfo{mkInfo(false)}, 0.5, sel).Duration
	srs := m.PredictStage([]*exec.NodeInfo{mkInfo(true)}, 0.5, sel).Duration
	// 320 tuple-reads vs 5 block-reads at the same per-unit price.
	if !(srs > 10*cluster) {
		t.Errorf("SRS prediction %v not clearly above cluster %v", srs, cluster)
	}
}

func TestPredictionPartialPlanUnits(t *testing.T) {
	// Partial fulfillment: merge units and new points cover same-stage
	// pairs only, so the prediction must be below full fulfillment's
	// once cumulative state exists.
	base := func(id int) *exec.NodeInfo {
		return &exec.NodeInfo{ID: id, Op: exec.OpBase, BaseName: "r" + string(rune('0'+id)),
			BaseTuples: 640, BaseBlocks: 10, BlockingFactor: 64}
	}
	mk := func(plan exec.Plan) *exec.NodeInfo {
		l, r := base(1), base(2)
		l.CumOut, r.CumOut = 320, 320
		return &exec.NodeInfo{
			ID: 3, Op: exec.OpJoin, Plan: plan, NumRuns: 2,
			Children: []*exec.NodeInfo{l, r},
			CumOut:   100, CumPoints: 320 * 320,
		}
	}
	m := NewModel(TrueCoefficients(storage.SunProfile(), 64), true)
	sel := func(n *exec.NodeInfo, _ float64) float64 {
		if n.Op == exec.OpJoin {
			return 0.001
		}
		return 1
	}
	full := m.PredictStage([]*exec.NodeInfo{mk(exec.FullFulfillment)}, 0.2, sel).Duration
	partial := m.PredictStage([]*exec.NodeInfo{mk(exec.PartialFulfillment)}, 0.2, sel).Duration
	if !(partial < full) {
		t.Errorf("partial prediction %v not below full %v", partial, full)
	}
}
