// Package cost implements the adaptive time-cost formulas of the
// paper's Section 4. The time cost of a stage is the sum over RA
// operators of per-step costs (write, sort, merge, scan, output, fixed
// init), each a coefficient times a unit measure (tuples, n·log n,
// pages ≈ tuples / blocking factor). Coefficients start at "designer
// defaults" and are ADJUSTED AT RUN TIME from observed step durations —
// "during the execution of the operation, we record the actual amount
// of time spent on each step and ... dynamically adjust the
// coefficients of the cost functions".
//
// The model also evaluates QCOST(f, SEL⁺): the predicted duration of the
// next stage given a candidate sample fraction f and per-operator
// inflated selectivities (supplied by internal/timectrl), which
// Sample-Size-Determine (Fig. 3.4) binary-searches against the
// remaining quota.
package cost

import (
	"math"
	"time"

	"tcq/internal/exec"
	"tcq/internal/storage"
)

// key identifies one fitted coefficient: a node's step.
type key struct {
	nodeID int
	step   exec.StepKind
}

// fit accumulates observed (units, duration) pairs; the fitted
// coefficient is the ratio of sums Σt/Σu, a units-weighted average that
// is robust to per-stage jitter.
type fit struct {
	units   float64
	seconds float64
}

// Coefficients is a per-(operator, step) table of seconds-per-unit
// values, used both for designer defaults and for describing the true
// simulated machine in tests.
type Coefficients map[exec.OpKind]map[exec.StepKind]float64

// clone deep-copies the table.
func (c Coefficients) clone() Coefficients {
	out := make(Coefficients, len(c))
	for op, steps := range c {
		m := make(map[exec.StepKind]float64, len(steps))
		for s, v := range steps {
			m[s] = v
		}
		out[op] = m
	}
	return out
}

// Get returns the coefficient for (op, step), or 0 when absent.
func (c Coefficients) Get(op exec.OpKind, step exec.StepKind) float64 {
	if m, ok := c[op]; ok {
		return m[step]
	}
	return 0
}

// Scale returns a copy with every coefficient multiplied by k (used by
// tests and the adaptive-cost ablation to start the model off-true).
func (c Coefficients) Scale(k float64) Coefficients {
	out := c.clone()
	for _, steps := range out {
		for s := range steps {
			steps[s] *= k
		}
	}
	return out
}

// TrueCoefficients derives the exact per-unit costs implied by a
// storage.CostProfile and blocking factor — what a perfectly calibrated
// model would converge to on the simulated machine.
func TrueCoefficients(p storage.CostProfile, blockingFactor int) Coefficients {
	if blockingFactor < 1 {
		blockingFactor = 1
	}
	perTupleWrite := p.TupleWrite.Seconds() + p.PageWrite.Seconds()/float64(blockingFactor)
	return Coefficients{
		exec.OpBase: {
			exec.StepRead: p.BlockRead.Seconds(),
			exec.StepInit: p.OpInit.Seconds(),
		},
		exec.OpSelect: {
			exec.StepScan:   p.TupleCheck.Seconds(), // × predicate comparisons at predict time
			exec.StepOutput: perTupleWrite,
			exec.StepInit:   p.OpInit.Seconds(),
		},
		exec.OpJoin: {
			exec.StepWrite:  perTupleWrite,
			exec.StepSort:   p.TupleCompare.Seconds(),
			exec.StepMerge:  p.TupleCompare.Seconds(),
			exec.StepOutput: perTupleWrite,
			exec.StepInit:   p.OpInit.Seconds(),
		},
		exec.OpIntersect: {
			exec.StepWrite:  perTupleWrite,
			exec.StepSort:   p.TupleCompare.Seconds(),
			exec.StepMerge:  p.TupleCompare.Seconds(),
			exec.StepOutput: perTupleWrite,
			exec.StepInit:   p.OpInit.Seconds(),
		},
		exec.OpProject: {
			exec.StepWrite:  perTupleWrite,
			exec.StepSort:   p.TupleCompare.Seconds(),
			exec.StepScan:   p.TupleCheck.Seconds(),
			exec.StepOutput: perTupleWrite,
			exec.StepInit:   p.OpInit.Seconds(),
		},
	}
}

// DefaultCoefficients returns the "designer" initial values the paper
// describes (initialised from experiments with the largest possible
// tuples, a two-comparison selection formula and two join attributes) —
// deliberately conservative relative to the true machine, so the
// adaptive fit has real work to do.
func DefaultCoefficients(p storage.CostProfile, blockingFactor int) Coefficients {
	c := TrueCoefficients(p, blockingFactor)
	// Largest tuples => fewer tuples per page, costlier writes; two
	// comparisons / join attributes => costlier checks and merges.
	c[exec.OpSelect][exec.StepScan] *= 2
	c[exec.OpSelect][exec.StepOutput] *= 1.6
	c[exec.OpJoin][exec.StepMerge] *= 1.8
	c[exec.OpJoin][exec.StepWrite] *= 1.5
	c[exec.OpIntersect][exec.StepMerge] *= 1.8
	c[exec.OpIntersect][exec.StepWrite] *= 1.5
	c[exec.OpProject][exec.StepScan] *= 1.7
	c[exec.OpProject][exec.StepWrite] *= 1.5
	return c
}

// Model is the adaptive cost model of one query session.
type Model struct {
	defaults Coefficients
	fits     map[key]*fit
	adaptive bool
}

// NewModel creates a cost model starting from the given default
// coefficients. adaptive enables run-time coefficient adjustment; with
// adaptive=false the model is the paper's "fixed form" ablation.
func NewModel(defaults Coefficients, adaptive bool) *Model {
	return &Model{
		defaults: defaults.clone(),
		fits:     make(map[key]*fit),
		adaptive: adaptive,
	}
}

// Observe folds a stage's recorded step timings into the per-node fits
// (no-op when the model is non-adaptive).
func (m *Model) Observe(timings []exec.StepTiming) {
	if !m.adaptive {
		return
	}
	for _, t := range timings {
		if t.Units <= 0 {
			continue
		}
		k := key{t.NodeID, t.Step}
		f := m.fits[k]
		if f == nil {
			f = &fit{}
			m.fits[k] = f
		}
		f.units += t.Units
		f.seconds += t.Actual.Seconds()
	}
}

// Coef returns the current coefficient (seconds per unit) for a node's
// step: the fitted ratio when observations exist, the designer default
// otherwise.
func (m *Model) Coef(nodeID int, op exec.OpKind, step exec.StepKind) float64 {
	if f, ok := m.fits[key{nodeID, step}]; ok && f.units > 0 {
		return f.seconds / f.units
	}
	return m.defaults.Get(op, step)
}

// Adaptive reports whether run-time adjustment is enabled.
func (m *Model) Adaptive() bool { return m.adaptive }

// SelPlusFunc supplies the inflated per-operator selectivity sel⁺ for a
// candidate stage: given the node and the number of NEW points its
// point space would cover this stage, return the selectivity to plan
// with (see timectrl.ComputeSelPlus; Fig. 3.5).
type SelPlusFunc func(node *exec.NodeInfo, newPoints float64) float64

// Prediction is the outcome of evaluating QCOST for one candidate f.
type Prediction struct {
	Duration time.Duration
	// NewOut predicts each node's new output tuples (by node id).
	NewOut map[int]float64
}

// PredictStage evaluates QCOST(f, SEL⁺): the predicted duration of the
// next stage over the given term trees, where each base relation
// contributes a fresh sample fraction f of its blocks. Base relations
// appearing in several terms (or twice in one term) are read once; the
// read cost is charged on first encounter.
func (m *Model) PredictStage(roots []*exec.NodeInfo, f float64, selPlus SelPlusFunc) Prediction {
	p := Prediction{NewOut: make(map[int]float64)}
	seconds := 0.0
	seenBase := map[string]bool{}
	for _, root := range roots {
		_, s := m.predictNode(root, f, selPlus, seenBase, p.NewOut)
		seconds += s
	}
	p.Duration = time.Duration(seconds * float64(time.Second))
	return p
}

// predictNode returns (predicted new output tuples, predicted seconds)
// for one node and its subtree.
func (m *Model) predictNode(n *exec.NodeInfo, f float64, selPlus SelPlusFunc, seenBase map[string]bool, outMap map[int]float64) (float64, float64) {
	switch n.Op {
	case exec.OpBase:
		newTuples := f * float64(n.BaseTuples)
		// Read-step units: blocks under cluster sampling, tuples under
		// SRS (each random tuple costs a block read).
		readUnits := f * float64(n.BaseBlocks)
		if n.SRS {
			readUnits = newTuples
		}
		sec := 0.0
		if !seenBase[n.BaseName] {
			seenBase[n.BaseName] = true
			sec = m.Coef(n.ID, exec.OpBase, exec.StepRead)*readUnits +
				m.Coef(n.ID, exec.OpBase, exec.StepInit)
		}
		outMap[n.ID] = newTuples
		return newTuples, sec

	case exec.OpSelect:
		in, sec := m.predictNode(n.Children[0], f, selPlus, seenBase, outMap)
		sel := selPlus(n, in)
		out := sel * in
		comps := float64(n.PredComparisons)
		if comps < 1 {
			comps = 1
		}
		sec += m.Coef(n.ID, exec.OpSelect, exec.StepScan)*in*comps +
			m.Coef(n.ID, exec.OpSelect, exec.StepOutput)*out +
			m.Coef(n.ID, exec.OpSelect, exec.StepInit)
		outMap[n.ID] = out
		return out, sec

	case exec.OpProject:
		in, sec := m.predictNode(n.Children[0], f, selPlus, seenBase, outMap)
		sel := selPlus(n, in)
		out := sel * in
		sec += m.Coef(n.ID, exec.OpProject, exec.StepWrite)*in +
			m.Coef(n.ID, exec.OpProject, exec.StepSort)*nLogN(in) +
			m.Coef(n.ID, exec.OpProject, exec.StepScan)*in +
			m.Coef(n.ID, exec.OpProject, exec.StepOutput)*out +
			m.Coef(n.ID, exec.OpProject, exec.StepInit)
		outMap[n.ID] = out
		return out, sec

	case exec.OpJoin, exec.OpIntersect:
		newL, secL := m.predictNode(n.Children[0], f, selPlus, seenBase, outMap)
		newR, secR := m.predictNode(n.Children[1], f, selPlus, seenBase, outMap)
		sec := secL + secR
		cumL := float64(n.Children[0].CumOut)
		cumR := float64(n.Children[1].CumOut)

		var newPoints, mergeUnits float64
		if n.Plan == exec.PartialFulfillment {
			newPoints = newL * newR
			mergeUnits = newL + newR
		} else {
			newPoints = (cumL+newL)*(cumR+newR) - cumL*cumR
			// Fig. 4.5: new-left run joins every right run (s previous
			// plus the new one), previous left runs join the new right
			// run: Σ sizes = (s+1)·newL + cumR + newR + cumL + s·newR.
			s := float64(n.NumRuns)
			mergeUnits = (s+1)*newL + cumR + newR + cumL + s*newR
		}
		sel := selPlus(n, newPoints)
		out := sel * newPoints
		sec += m.Coef(n.ID, n.Op, exec.StepWrite)*(newL+newR) +
			m.Coef(n.ID, n.Op, exec.StepSort)*(nLogN(newL)+nLogN(newR)) +
			m.Coef(n.ID, n.Op, exec.StepMerge)*mergeUnits +
			m.Coef(n.ID, n.Op, exec.StepOutput)*out +
			m.Coef(n.ID, n.Op, exec.StepInit)
		outMap[n.ID] = out
		return out, sec

	default:
		return 0, 0
	}
}

// nLogN mirrors the executor's sort unit measure.
func nLogN(n float64) float64 {
	if n <= 1 {
		return 0
	}
	return n * math.Log2(n)
}
