package tcq

import (
	"io"
	"math"
	"runtime"
	"time"

	"tcq/internal/calib"
	"tcq/internal/core"
	"tcq/internal/exec"
	"tcq/internal/histogram"
	"tcq/internal/telemetry"
	"tcq/internal/timectrl"
	"tcq/internal/trace"
)

// StrategyKind selects the time-control strategy of Section 3.3.
type StrategyKind int

const (
	// OneAtATime is the One-at-a-Time-Interval strategy (the paper's
	// implemented default): each operator's selectivity is inflated to
	// sel⁺ with the DBeta risk knob.
	OneAtATime StrategyKind = iota
	// SingleInterval reserves whole-query cost headroom (DAlpha
	// standard deviations of the stage-cost prediction error).
	SingleInterval
	// Heuristic spends a fixed share (Gamma) of the remaining quota
	// each stage.
	Heuristic
)

// String names the strategy kind.
func (k StrategyKind) String() string {
	switch k {
	case SingleInterval:
		return "single-interval"
	case Heuristic:
		return "heuristic"
	default:
		return "one-at-a-time"
	}
}

// Plan selects the cluster-sampling evaluation plan.
type Plan int

const (
	// FullFulfillment combines every stage's sample with all previous
	// stages' samples (the paper's implemented plan).
	FullFulfillment Plan = iota
	// PartialFulfillment combines only same-stage samples.
	PartialFulfillment
)

// EstimateOptions configures a time-constrained COUNT.
type EstimateOptions struct {
	// Quota is the time constraint T (required).
	Quota time.Duration
	// HardDeadline aborts the running stage at quota expiry (the hard
	// time constraint). The default lets the final stage finish and
	// reports the overspend (the paper's instrumented ERAM mode).
	HardDeadline bool
	// Strategy picks the time-control strategy (default OneAtATime).
	Strategy StrategyKind
	// DBeta is the One-at-a-Time risk knob (default 12; 0 ≈ 50% risk
	// of overspending, larger is more conservative).
	DBeta float64
	// DAlpha is the Single-Interval reserve knob (default 1).
	DAlpha float64
	// Gamma is the Heuristic per-stage share (default 0.5).
	Gamma float64
	// Plan selects full (default) or partial fulfillment.
	Plan Plan
	// SimpleRandomSampling samples individual tuples instead of whole
	// disk blocks (each tuple then costs a full block read — the
	// paper's Fig. 3.2 rationale for preferring cluster sampling).
	SimpleRandomSampling bool
	// TargetRelError, when positive, adds an error-constrained stopping
	// criterion: stop once the CI half-width falls below this fraction
	// of the estimate (e.g. 0.05 for ±5%).
	TargetRelError float64
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// InitialJoinSelectivity overrides the first-stage join selectivity
	// assumption (default 1, the Fig. 3.3 maximum; the paper's join
	// experiment uses 0.1).
	InitialJoinSelectivity float64
	// StableStages, when >= 2, stops once the estimate has moved by
	// less than StableTol (relative; default 0.01) over that many
	// stages — §3.2's "does not improve much" criterion.
	StableStages int
	// StableTol is the relative movement threshold for StableStages.
	StableTol float64
	// UseStatistics estimates selection selectivities from the
	// histograms built by DB.BuildStatistics instead of run-time
	// samples (operators the histograms cannot cover still use
	// run-time estimation). Requires a prior BuildStatistics call.
	UseStatistics bool
	// Parallelism bounds the worker pool evaluating the query's signed
	// SJIP terms within a stage (default GOMAXPROCS; set negative for
	// serial evaluation). Any value yields bit-identical results: the
	// per-term work is recorded on lanes and replayed in term order
	// (see DESIGN.md §7). HardDeadline queries always run serially.
	Parallelism int
	// Seed drives block sampling (default 1).
	Seed int64
	// Label tags the query in telemetry and calibration records (the
	// progress registry, history ring, flight recorder). Tenant-scoped
	// sessions (DB.Tenant) stamp "tenant/name" here; empty for ad-hoc
	// queries. Purely observational: it never affects the estimate.
	Label string
	// OnProgress, when non-nil, receives each completed stage's
	// progressive estimate (online-aggregation style).
	OnProgress func(Progress)
	// Trace, when non-nil, receives a human-readable line per stage
	// decision (selectivities, planned fraction, predicted vs actual) —
	// the debugging view of the time-control algorithm.
	Trace io.Writer
	// CollectTrace records a structured per-stage trace of the run and
	// attaches it to Estimate.Trace (see ExplainAnalyze for a rendered
	// view). Off by default: collection snapshots the operator tree
	// after every stage.
	CollectTrace bool
	// Tracer, when non-nil, additionally streams trace events to a
	// custom observer (see the trace package).
	Tracer trace.Tracer
	// GroundTruth, when non-nil, declares the query's known exact answer
	// (e.g. a prior full-scan count). It never influences the estimate;
	// it feeds the calibration audit: the final interval is scored
	// against it for the empirical-coverage statistics in
	// DB.Calibration() and DB.QueryStats(), and a miss captures the run
	// in the flight recorder. A pointer because 0 is a meaningful truth.
	GroundTruth *float64
}

// Progress is a per-stage progressive estimate.
type Progress struct {
	Stage    int
	Estimate float64
	StdErr   float64
	Blocks   int           // blocks drawn this stage
	Spent    time.Duration // stage duration
}

// Estimate is the outcome of a time-constrained COUNT.
type Estimate struct {
	// Value is the COUNT estimate from the last stage completed within
	// the quota.
	Value float64
	// StdErr is the estimate's standard error.
	StdErr float64
	// Interval is the CI half-width at Confidence; the interval is
	// [Value−Interval, Value+Interval].
	Interval float64
	// Confidence is the CI level used.
	Confidence float64
	// Stages completed within the quota.
	Stages int
	// Blocks evaluated within the quota (the overall sample size).
	Blocks int
	// Elapsed is total time spent, including any overrun.
	Elapsed time.Duration
	// Utilization is the fraction of the quota spent productively.
	Utilization float64
	// Overspent reports whether the quota was exceeded and by how much
	// (only measurable without HardDeadline).
	Overspent bool
	Overrun   time.Duration
	// StopReason explains why evaluation ended.
	StopReason string
	// Trace is the structured per-stage record of the run, present only
	// when EstimateOptions.CollectTrace was set.
	Trace *QueryTrace
}

// CountEstimate evaluates COUNT(q) within the time quota using the
// paper's stage-by-stage algorithm (Fig. 3.1).
func (db *DB) CountEstimate(q Query, opts EstimateOptions) (*Estimate, error) {
	return db.estimate(q, core.AggCount, "", opts)
}

// SumEstimate evaluates SUM(q.col) within the time quota — the paper's
// "any aggregate, given an estimator" extension: the point-space model
// carries the column value instead of the 0/1 indicator.
func (db *DB) SumEstimate(q Query, col string, opts EstimateOptions) (*Estimate, error) {
	return db.estimate(q, core.AggSum, col, opts)
}

// AvgEstimate evaluates AVG(q.col) within the time quota, as the ratio
// of the SUM and COUNT estimators.
func (db *DB) AvgEstimate(q Query, col string, opts EstimateOptions) (*Estimate, error) {
	return db.estimate(q, core.AggAvg, col, opts)
}

// GroupCount is one group's COUNT estimate.
type GroupCount struct {
	// Key is the group's column value (int64, float64 or string).
	Key interface{}
	// Value is the group's COUNT estimate; the CI is Value ± Interval.
	Value    float64
	StdErr   float64
	Interval float64
}

// GroupCountEstimate estimates per-group COUNTs of q's output over the
// named column within the time quota — every group shares the one
// sampled evaluation. Groups never sampled are absent; rare groups have
// wide intervals. Returns the groups (sorted by key) plus the overall
// COUNT estimate.
func (db *DB) GroupCountEstimate(q Query, col string, opts EstimateOptions) ([]GroupCount, *Estimate, error) {
	res, est, err := db.run(q, core.AggCount, "", col, opts)
	if err != nil {
		return nil, nil, err
	}
	level := est.Confidence
	out := make([]GroupCount, 0, len(res.Groups))
	for _, g := range res.Groups {
		out = append(out, GroupCount{
			Key:      g.Key,
			Value:    g.Estimate.Value,
			StdErr:   g.Estimate.StdErr(),
			Interval: g.Estimate.Interval(level).Half,
		})
	}
	return out, est, nil
}

func (db *DB) estimate(q Query, agg core.AggKind, col string, opts EstimateOptions) (*Estimate, error) {
	_, est, err := db.run(q, agg, col, "", opts)
	return est, err
}

// run is the shared implementation behind every estimate entry point.
func (db *DB) run(q Query, agg core.AggKind, col, groupBy string, opts EstimateOptions) (*core.Result, *Estimate, error) {
	if q.err != nil {
		return nil, nil, q.err
	}
	if opts.Quota <= 0 {
		return nil, nil, errNoQuota
	}
	if opts.Confidence <= 0 || opts.Confidence >= 1 {
		opts.Confidence = 0.95
	}

	var strategy timectrl.Strategy
	switch opts.Strategy {
	case SingleInterval:
		dAlpha := opts.DAlpha
		if dAlpha == 0 {
			dAlpha = 1
		}
		strategy = &timectrl.SingleInterval{DAlpha: dAlpha}
	case Heuristic:
		gamma := opts.Gamma
		if gamma <= 0 || gamma > 1 {
			gamma = 0.5
		}
		strategy = &timectrl.Heuristic{Gamma: gamma, CommitBelow: opts.Quota / 8}
	default:
		dBeta := opts.DBeta
		if dBeta == 0 {
			dBeta = 12
		}
		strategy = &timectrl.OneAtATime{DBeta: dBeta}
	}

	initial := timectrl.DefaultInitials()
	if opts.InitialJoinSelectivity > 0 {
		initial.Join = opts.InitialJoinSelectivity
	}

	var criteria timectrl.Any
	if opts.TargetRelError > 0 {
		criteria = append(criteria, timectrl.ErrorTarget{RelHalfWidth: opts.TargetRelError, Level: opts.Confidence})
	}
	if opts.StableStages >= 2 {
		tol := opts.StableTol
		if tol <= 0 {
			tol = 0.01
		}
		criteria = append(criteria, timectrl.NoImprovement{K: opts.StableStages, Tol: tol})
	}
	var stop timectrl.Criterion
	if len(criteria) > 0 {
		stop = criteria
	}

	mode := core.Overrun
	if opts.HardDeadline {
		mode = core.HardDeadline
	}
	plan := exec.FullFulfillment
	if opts.Plan == PartialFulfillment {
		plan = exec.PartialFulfillment
	}
	samplingPlan := core.ClusterSampling
	if opts.SimpleRandomSampling {
		samplingPlan = core.SimpleRandomSampling
	}

	workers := opts.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}

	coreOpts := core.Options{
		Agg:         agg,
		AggColumn:   col,
		GroupBy:     groupBy,
		Quota:       opts.Quota,
		Histograms:  histCat(db, opts.UseStatistics),
		Strategy:    strategy,
		Stop:        stop,
		Mode:        mode,
		Plan:        plan,
		Sampling:    samplingPlan,
		Trace:       opts.Trace,
		Tracer:      opts.Tracer,
		Metrics:     db.metrics,
		Initial:     initial,
		Confidence:  opts.Confidence,
		Seed:        opts.Seed,
		Parallelism: workers,
		Catalog:     db.samples,
	}
	var collector *trace.Collector
	if opts.CollectTrace {
		collector = trace.NewCollector()
		coreOpts.Tracer = trace.Combine(collector, opts.Tracer)
	}
	// The live telemetry handle rides the tracer chain: progress updates
	// happen at stage boundaries under the tracing layer's read-only
	// contract. With telemetry off this is a single nil check.
	var handle *telemetry.Handle
	if db.progress != nil {
		handle = db.progress.Track(opts.Label)
		if opts.GroundTruth != nil {
			handle.SetTruth(*opts.GroundTruth)
		}
		coreOpts.Tracer = trace.Combine(coreOpts.Tracer, handle)
	}
	// The calibration probe rides the same chain under the same
	// contract; with calibration off this is a single nil check.
	var probe *calib.Probe
	if db.calib != nil {
		var gt *calib.Truth
		if opts.GroundTruth != nil {
			gt = &calib.Truth{Value: *opts.GroundTruth, Level: opts.Confidence}
		}
		probe = db.calib.Track(opts.Label, gt)
		coreOpts.Tracer = trace.Combine(coreOpts.Tracer, probe)
	}
	if opts.OnProgress != nil {
		cb := opts.OnProgress
		coreOpts.OnStage = func(r core.StageRecord) {
			stdErr := 0.0
			if r.Variance > 0 {
				stdErr = sqrt(r.Variance)
			}
			cb(Progress{
				Stage:    r.Index,
				Estimate: r.Estimate,
				StdErr:   stdErr,
				Blocks:   r.Blocks,
				Spent:    r.Actual,
			})
		}
	}

	// Each estimate runs on its own session: a confined clock and
	// counter view over the shared catalog, making concurrent calls
	// independent (and bit-reproducible under a simulated clock).
	sess, finish := db.session(opts.Seed)
	res, err := core.NewEngine(sess).Count(q.expr, coreOpts)
	if err != nil {
		handle.Discard()
		finish(0)
		return nil, nil, err
	}
	finish(res.Elapsed)
	var qt *QueryTrace
	if collector != nil {
		qt = collector.Trace()
	}
	return res, &Estimate{
		Value:       res.Estimate.Value,
		StdErr:      res.Estimate.StdErr(),
		Interval:    res.Interval.Half,
		Confidence:  opts.Confidence,
		Stages:      res.Stages,
		Blocks:      res.Blocks,
		Elapsed:     res.Elapsed,
		Utilization: res.Utilization,
		Overspent:   res.Overspent,
		Overrun:     res.Overspend,
		StopReason:  res.StopReason,
		Trace:       qt,
	}, nil
}

// Lo returns the lower bound of the confidence interval.
func (e *Estimate) Lo() float64 { return e.Value - e.Interval }

// Hi returns the upper bound of the confidence interval.
func (e *Estimate) Hi() float64 { return e.Value + e.Interval }

// Validate type-checks the query against the catalog without running it.
func (db *DB) Validate(q Query) error {
	if q.err != nil {
		return q.err
	}
	_, err := q.expr.Schema(db.catalog())
	return err
}

// histCat returns the DB's statistics catalog when requested and built.
func histCat(db *DB, use bool) *histogram.Catalog {
	if !use {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
